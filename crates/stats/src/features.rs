//! Feature vectors from summary statistics (§3.2, Table 2).
//!
//! Every partition gets a fixed-schema vector determined entirely by the
//! table's schema: a 42-wide block per column (17 scalar statistics + a
//! 25-bit heavy-hitter occurrence bitmap) plus 4 query-specific selectivity
//! features at the end.
//!
//! At query time a mask zeroes the blocks of columns the query does not use,
//! bitmap bits survive only for the query's group-by columns, and the four
//! selectivity slots are filled per partition.

use ps3_query::{CompiledPredicate, Query};
use ps3_storage::{ColId, Table};

use crate::builder::TableStats;
use crate::selectivity::{selectivity_features_compiled, SelectivityFeatures};

/// Scalar statistics per column (before the bitmap).
pub const SCALARS_PER_COL: usize = 17;
/// Occurrence-bitmap width: the paper caps global heavy hitters at 25/column.
pub const BITMAP_BITS: usize = 25;
/// Total feature slots per column.
pub const PER_COL: usize = SCALARS_PER_COL + BITMAP_BITS;
/// Trailing query-level selectivity features.
pub const SELECTIVITY_FEATURES: usize = 4;

/// The *kind* of a feature — the granularity at which the paper's
/// feature-selection procedure (Algorithm 3) includes or excludes features
/// (one kind spans all columns), and at which Figure 5 groups importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureType {
    /// mean(x)
    Mean,
    /// min(x)
    Min,
    /// max(x)
    Max,
    /// mean(x²)
    SecondMoment,
    /// std(x)
    Std,
    /// mean(log x)
    LogMean,
    /// mean(log²x)
    LogSecondMoment,
    /// min(log x)
    LogMin,
    /// max(log x)
    LogMax,
    /// number of distinct values
    Ndv,
    /// avg freq. of distinct values
    DvAvg,
    /// max freq. of distinct values
    DvMax,
    /// min freq. of distinct values
    DvMin,
    /// sum freq. of distinct values
    DvSum,
    /// number of heavy hitters
    HhCount,
    /// avg freq. of heavy hitters
    HhAvg,
    /// max freq. of heavy hitters
    HhMax,
    /// heavy-hitter occurrence bitmap (all 25 bits)
    HhBitmap,
    /// selectivity_upper
    SelUpper,
    /// selectivity_indep
    SelIndep,
    /// selectivity_min
    SelMin,
    /// selectivity_max
    SelMax,
}

impl FeatureType {
    /// Every feature type, in schema order.
    pub const ALL: [FeatureType; 22] = [
        FeatureType::Mean,
        FeatureType::Min,
        FeatureType::Max,
        FeatureType::SecondMoment,
        FeatureType::Std,
        FeatureType::LogMean,
        FeatureType::LogSecondMoment,
        FeatureType::LogMin,
        FeatureType::LogMax,
        FeatureType::Ndv,
        FeatureType::DvAvg,
        FeatureType::DvMax,
        FeatureType::DvMin,
        FeatureType::DvSum,
        FeatureType::HhCount,
        FeatureType::HhAvg,
        FeatureType::HhMax,
        FeatureType::HhBitmap,
        FeatureType::SelUpper,
        FeatureType::SelIndep,
        FeatureType::SelMin,
        FeatureType::SelMax,
    ];

    /// Stable display name (matches the paper's Algorithm-3 vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            FeatureType::Mean => "x",
            FeatureType::Min => "min(x)",
            FeatureType::Max => "max(x)",
            FeatureType::SecondMoment => "x2",
            FeatureType::Std => "std",
            FeatureType::LogMean => "log(x)",
            FeatureType::LogSecondMoment => "log2(x)",
            FeatureType::LogMin => "min(log(x))",
            FeatureType::LogMax => "max(log(x))",
            FeatureType::Ndv => "# dv",
            FeatureType::DvAvg => "avg dv",
            FeatureType::DvMax => "max dv",
            FeatureType::DvMin => "min dv",
            FeatureType::DvSum => "sum dv",
            FeatureType::HhCount => "# hh",
            FeatureType::HhAvg => "avg hh",
            FeatureType::HhMax => "max hh",
            FeatureType::HhBitmap => "hh bitmap",
            FeatureType::SelUpper => "selectivity_upper",
            FeatureType::SelIndep => "selectivity_indep",
            FeatureType::SelMin => "selectivity_min",
            FeatureType::SelMax => "selectivity_max",
        }
    }

    /// Whether this is one of the four selectivity features.
    pub fn is_selectivity(self) -> bool {
        matches!(
            self,
            FeatureType::SelUpper
                | FeatureType::SelIndep
                | FeatureType::SelMin
                | FeatureType::SelMax
        )
    }

    /// The Figure-5 category this feature belongs to.
    pub fn category(self) -> FeatureCategory {
        match self {
            FeatureType::Mean
            | FeatureType::Min
            | FeatureType::Max
            | FeatureType::SecondMoment
            | FeatureType::Std
            | FeatureType::LogMean
            | FeatureType::LogSecondMoment
            | FeatureType::LogMin
            | FeatureType::LogMax => FeatureCategory::Measure,
            FeatureType::Ndv
            | FeatureType::DvAvg
            | FeatureType::DvMax
            | FeatureType::DvMin
            | FeatureType::DvSum => FeatureCategory::DistinctValue,
            FeatureType::HhCount
            | FeatureType::HhAvg
            | FeatureType::HhMax
            | FeatureType::HhBitmap => FeatureCategory::HeavyHitter,
            FeatureType::SelUpper
            | FeatureType::SelIndep
            | FeatureType::SelMin
            | FeatureType::SelMax => FeatureCategory::Selectivity,
        }
    }
}

/// The four sketch-derived feature categories of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureCategory {
    /// Histogram-derived selectivity estimates.
    Selectivity,
    /// Heavy-hitter statistics and bitmaps.
    HeavyHitter,
    /// Distinct-value (AKMV) statistics.
    DistinctValue,
    /// Moment/min/max measures.
    Measure,
}

impl FeatureCategory {
    /// All categories in Figure-5 order.
    pub const ALL: [FeatureCategory; 4] = [
        FeatureCategory::Selectivity,
        FeatureCategory::HeavyHitter,
        FeatureCategory::DistinctValue,
        FeatureCategory::Measure,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            FeatureCategory::Selectivity => "selectivity",
            FeatureCategory::HeavyHitter => "hh",
            FeatureCategory::DistinctValue => "dv",
            FeatureCategory::Measure => "measure",
        }
    }
}

/// Index arithmetic over the feature vector layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSchema {
    num_cols: usize,
}

impl FeatureSchema {
    /// Schema for a table with `num_cols` columns.
    pub fn new(num_cols: usize) -> Self {
        Self { num_cols }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        self.num_cols * PER_COL + SELECTIVITY_FEATURES
    }

    /// Number of table columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Start of column `c`'s block.
    pub fn col_offset(&self, c: ColId) -> usize {
        c.index() * PER_COL
    }

    /// Offset of the four selectivity features.
    pub fn selectivity_offset(&self) -> usize {
        self.num_cols * PER_COL
    }

    /// The feature type of dimension `idx`.
    pub fn type_of(&self, idx: usize) -> FeatureType {
        let sel = self.selectivity_offset();
        if idx >= sel {
            return match idx - sel {
                0 => FeatureType::SelUpper,
                1 => FeatureType::SelIndep,
                2 => FeatureType::SelMin,
                3 => FeatureType::SelMax,
                _ => panic!("feature index {idx} out of range"),
            };
        }
        let within = idx % PER_COL;
        if within >= SCALARS_PER_COL {
            FeatureType::HhBitmap
        } else {
            FeatureType::ALL[within]
        }
    }

    /// All dimensions carrying feature type `ft`.
    pub fn indices_of(&self, ft: FeatureType) -> Vec<usize> {
        (0..self.dim()).filter(|&i| self.type_of(i) == ft).collect()
    }

    /// Human-readable name of dimension `idx` given the table schema.
    pub fn name(&self, idx: usize, table: &Table) -> String {
        let sel = self.selectivity_offset();
        if idx >= sel {
            return self.type_of(idx).label().to_owned();
        }
        let col = idx / PER_COL;
        let within = idx % PER_COL;
        let col_name = &table.schema().col(ColId(col)).name;
        if within >= SCALARS_PER_COL {
            format!("{col_name}.bitmap[{}]", within - SCALARS_PER_COL)
        } else {
            format!("{col_name}.{}", FeatureType::ALL[within].label())
        }
    }
}

/// Masked, selectivity-augmented feature matrix for one query: the `F ∈
/// R^{N×M}` of §2.4.
#[derive(Debug, Clone)]
pub struct QueryFeatures {
    /// One row per partition.
    pub rows: Vec<Vec<f64>>,
    /// The layout.
    pub schema: FeatureSchema,
}

impl QueryFeatures {
    /// Build the feature matrix for `query` (§3.2):
    /// * start from a zero row and copy in only the static blocks of the
    ///   columns the query touches (equivalent to cloning the full static
    ///   row and zeroing the unused blocks, but it moves `used/total`
    ///   instead of all of the ~42·C features per partition),
    /// * keep occurrence bitmaps only for the query's group-by columns,
    /// * append the four per-partition selectivity estimates, probed
    ///   through the predicate compiled **once** per `(query, table)` —
    ///   `IN`/`Contains` dictionary resolution no longer reruns per
    ///   partition.
    pub fn compute(stats: &TableStats, table: &Table, query: &Query) -> Self {
        let schema = *stats.feature_schema();
        let used = query.used_columns();
        let mut gb_mask = vec![false; schema.num_cols()];
        for c in &query.group_by {
            gb_mask[c.index()] = true;
        }
        let compiled = query
            .predicate
            .as_ref()
            .map(|p| CompiledPredicate::compile(table, p));

        let sel_off = schema.selectivity_offset();
        let mut rows = Vec::with_capacity(stats.num_partitions());
        for p in 0..stats.num_partitions() {
            let statics = &stats.static_features()[p];
            let mut row = vec![0.0; schema.dim()];
            for c in &used {
                let off = schema.col_offset(*c);
                // Bitmaps are only computed for grouping columns (§3.2).
                let end = if gb_mask[c.index()] {
                    off + PER_COL
                } else {
                    off + SCALARS_PER_COL
                };
                row[off..end].copy_from_slice(&statics[off..end]);
            }
            let sel = match &compiled {
                Some(cp) => selectivity_features_compiled(Some(cp), stats.partition(p)),
                None => SelectivityFeatures::all_pass(),
            };
            row[sel_off..sel_off + 4].copy_from_slice(&sel.as_array());
            rows.push(row);
        }
        Self { rows, schema }
    }

    /// Number of partitions (rows).
    pub fn num_partitions(&self) -> usize {
        self.rows.len()
    }

    /// The `selectivity_upper` value of partition `p` — the §4.3 funnel's
    /// first filter.
    pub fn selectivity_upper(&self, p: usize) -> f64 {
        self.rows[p][self.schema.selectivity_offset()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{StatsConfig, TableStats};
    use ps3_query::{AggExpr, Clause, CmpOp, Predicate, Query, ScalarExpr};
    use ps3_storage::table::TableBuilder;
    use ps3_storage::{ColumnMeta, ColumnType, PartitionedTable, Schema};

    fn fixture() -> (PartitionedTable, TableStats) {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Numeric),
            ColumnMeta::new("b", ColumnType::Numeric),
            ColumnMeta::new("g", ColumnType::Categorical),
        ]);
        let mut builder = TableBuilder::new(schema);
        for i in 0..200 {
            builder.push_row(&[i as f64, (i % 13) as f64], &[["x", "y"][i % 2]]);
        }
        let pt = PartitionedTable::with_equal_partitions(builder.finish(), 8);
        let stats = TableStats::build(&pt, &StatsConfig::default());
        (pt, stats)
    }

    #[test]
    fn mask_zeroes_unused_columns() {
        let (pt, stats) = fixture();
        // Query touches only column a (aggregate) — b and g must be zeroed.
        let q = Query::new(vec![AggExpr::sum(ScalarExpr::col(ColId(0)))], None, vec![]);
        let f = QueryFeatures::compute(&stats, pt.table(), &q);
        let schema = f.schema;
        for row in &f.rows {
            let b_off = schema.col_offset(ColId(1));
            assert!(row[b_off..b_off + PER_COL].iter().all(|&x| x == 0.0));
            let g_off = schema.col_offset(ColId(2));
            assert!(row[g_off..g_off + PER_COL].iter().all(|&x| x == 0.0));
            // Column a's block carries signal (mean of a differs from 0).
            let a_off = schema.col_offset(ColId(0));
            assert!(row[a_off] != 0.0);
        }
    }

    #[test]
    fn bitmaps_survive_only_for_group_by_columns() {
        let (pt, stats) = fixture();
        // g used as a predicate column but NOT grouped: bitmap must be zero.
        let q = Query::new(
            vec![AggExpr::count()],
            Some(Predicate::Clause(Clause::str_eq(ColId(2), "x"))),
            vec![],
        );
        let f = QueryFeatures::compute(&stats, pt.table(), &q);
        let off = f.schema.col_offset(ColId(2)) + SCALARS_PER_COL;
        for row in &f.rows {
            assert!(row[off..off + BITMAP_BITS].iter().all(|&x| x == 0.0));
            // But scalar hh/dv features of g survive (column is used).
            assert!(
                row[f.schema.col_offset(ColId(2)) + 9] > 0.0,
                "ndv masked out"
            );
        }
        // Same query grouped by g: bitmap bits appear ("x"/"y" are heavy).
        let q = Query::new(vec![AggExpr::count()], None, vec![ColId(2)]);
        let f = QueryFeatures::compute(&stats, pt.table(), &q);
        let any_bit = f
            .rows
            .iter()
            .any(|row| row[off..off + BITMAP_BITS].iter().any(|&x| x != 0.0));
        assert!(any_bit, "group-by column lost its occurrence bitmap");
    }

    #[test]
    fn selectivity_slots_reflect_predicate() {
        let (pt, stats) = fixture();
        let q = Query::new(
            vec![AggExpr::count()],
            Some(Predicate::Clause(Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Lt,
                value: 50.0,
            })),
            vec![],
        );
        let f = QueryFeatures::compute(&stats, pt.table(), &q);
        // Rows 0..50 live in the first two partitions (25 rows each).
        assert!(f.selectivity_upper(0) > 0.9);
        assert!(f.selectivity_upper(7) == 0.0);
        // No predicate: all-pass.
        let q = Query::new(vec![AggExpr::count()], None, vec![]);
        let f = QueryFeatures::compute(&stats, pt.table(), &q);
        assert_eq!(f.selectivity_upper(3), 1.0);
    }

    #[test]
    fn layout_arithmetic() {
        let s = FeatureSchema::new(3);
        assert_eq!(s.dim(), 3 * PER_COL + 4);
        assert_eq!(s.col_offset(ColId(2)), 2 * PER_COL);
        assert_eq!(s.selectivity_offset(), 3 * PER_COL);
    }

    #[test]
    fn type_of_every_dimension() {
        let s = FeatureSchema::new(2);
        assert_eq!(s.type_of(0), FeatureType::Mean);
        assert_eq!(s.type_of(16), FeatureType::HhMax);
        assert_eq!(s.type_of(17), FeatureType::HhBitmap);
        assert_eq!(s.type_of(41), FeatureType::HhBitmap);
        assert_eq!(s.type_of(PER_COL), FeatureType::Mean);
        assert_eq!(s.type_of(s.selectivity_offset()), FeatureType::SelUpper);
        assert_eq!(s.type_of(s.selectivity_offset() + 3), FeatureType::SelMax);
    }

    #[test]
    fn indices_of_covers_dim_exactly_once() {
        let s = FeatureSchema::new(2);
        let mut seen = vec![0u32; s.dim()];
        for ft in FeatureType::ALL {
            for i in s.indices_of(ft) {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn bitmap_indices_per_column() {
        let s = FeatureSchema::new(2);
        let idx = s.indices_of(FeatureType::HhBitmap);
        assert_eq!(idx.len(), 2 * BITMAP_BITS);
    }

    #[test]
    fn categories_partition_types() {
        use std::collections::HashMap;
        let mut counts: HashMap<FeatureCategory, usize> = HashMap::new();
        for ft in FeatureType::ALL {
            *counts.entry(ft.category()).or_default() += 1;
        }
        assert_eq!(counts[&FeatureCategory::Measure], 9);
        assert_eq!(counts[&FeatureCategory::DistinctValue], 5);
        assert_eq!(counts[&FeatureCategory::HeavyHitter], 4);
        assert_eq!(counts[&FeatureCategory::Selectivity], 4);
    }
}
