//! Per-partition selectivity estimation from summary statistics (§3.2).
//!
//! Four features describe a predicate's selectivity on a partition:
//!
//! 1. `selectivity_upper` — a bound with **perfect recall**: it is zero only
//!    when provably no row of the partition satisfies the predicate. ANDs
//!    take the min of clause uppers; ORs the capped sum.
//! 2. `selectivity_indep` — assumes independence between clauses: product
//!    for ANDs, min for ORs (the paper's stated rule).
//! 3. `selectivity_min` / `selectivity_max` — min and max over the
//!    individual clause estimates.
//!
//! Clauses on the same numeric column inside one AND/OR node are *evaluated
//! jointly* (e.g. `X > 1 AND X < 5` intersects to one range before consulting
//! the histogram), per §3.2.

use ps3_query::{CmpOp, CompiledPredicate, Query};
use ps3_storage::{ColId, Schema, Table};

use crate::column_stats::ColumnStats;

/// The four selectivity features for one (query, partition) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityFeatures {
    /// Perfect-recall upper bound.
    pub upper: f64,
    /// Independence-assumption estimate.
    pub indep: f64,
    /// Min over individual clause estimates.
    pub min: f64,
    /// Max over individual clause estimates.
    pub max: f64,
}

impl SelectivityFeatures {
    /// The no-predicate case: everything qualifies.
    pub fn all_pass() -> Self {
        Self {
            upper: 1.0,
            indep: 1.0,
            min: 1.0,
            max: 1.0,
        }
    }

    /// As a fixed-order array `[upper, indep, min, max]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.upper, self.indep, self.min, self.max]
    }
}

/// A half-open/closed numeric interval used for joint clause evaluation.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    lo_incl: bool,
    hi: f64,
    hi_incl: bool,
}

impl Interval {
    fn full() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            lo_incl: true,
            hi: f64::INFINITY,
            hi_incl: true,
        }
    }

    fn from_cmp(op: CmpOp, v: f64) -> Option<Self> {
        let mut i = Self::full();
        match op {
            CmpOp::Lt => {
                i.hi = v;
                i.hi_incl = false;
            }
            CmpOp::Le => {
                i.hi = v;
                i.hi_incl = true;
            }
            CmpOp::Gt => {
                i.lo = v;
                i.lo_incl = false;
            }
            CmpOp::Ge => {
                i.lo = v;
                i.lo_incl = true;
            }
            CmpOp::Eq => {
                i.lo = v;
                i.hi = v;
            }
            // Ne is not an interval; evaluated separately.
            CmpOp::Ne => return None,
        }
        Some(i)
    }

    fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_incl) = if self.lo > other.lo {
            (self.lo, self.lo_incl)
        } else if other.lo > self.lo {
            (other.lo, other.lo_incl)
        } else {
            (self.lo, self.lo_incl && other.lo_incl)
        };
        let (hi, hi_incl) = if self.hi < other.hi {
            (self.hi, self.hi_incl)
        } else if other.hi < self.hi {
            (other.hi, other.hi_incl)
        } else {
            (self.hi, self.hi_incl && other.hi_incl)
        };
        Interval {
            lo,
            lo_incl,
            hi,
            hi_incl,
        }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_incl && self.hi_incl))
    }
}

/// `(upper, estimate)` for a numeric comparison (post-negation operator).
fn cmp_selectivity(op: CmpOp, value: f64, stats: &ColumnStats) -> (f64, f64) {
    match Interval::from_cmp(op, value) {
        Some(iv) => interval_selectivity(&iv, stats),
        None => {
            // Ne: complement of equality.
            let (eq_upper, eq_est) =
                interval_selectivity(&Interval::from_cmp(CmpOp::Eq, value).unwrap(), stats);
            let est = (1.0 - eq_est).clamp(0.0, 1.0);
            // Upper: all rows might differ from v unless the column is
            // constant at v (then eq covers everything).
            let upper = if eq_upper >= 1.0 && stats.akmv.distinct_estimate() <= 1.0 {
                0.0
            } else {
                1.0
            };
            (upper, est)
        }
    }
}

/// `(upper, estimate)` for a numeric interval.
fn interval_selectivity(iv: &Interval, stats: &ColumnStats) -> (f64, f64) {
    if iv.is_empty() {
        return (0.0, 0.0);
    }
    let Some(hist) = &stats.histogram else {
        // No histogram (shouldn't happen for numeric columns): stay safe.
        return (1.0, 0.5);
    };
    // Exact path: tiny domains keep a full dictionary of value bit patterns.
    if let Some(exact) = &stats.exact {
        let mut sel = 0.0;
        for (key, count) in exact.iter() {
            let v = f64::from_bits(key);
            let lo_ok = v > iv.lo || (iv.lo_incl && v == iv.lo);
            let hi_ok = v < iv.hi || (iv.hi_incl && v == iv.hi);
            if lo_ok && hi_ok {
                sel += count as f64;
            }
        }
        let sel = sel / stats.rows.max(1) as f64;
        return (sel, sel);
    }
    let upper = hist.cover_upper(iv.lo, iv.hi);
    let est = if iv.lo == iv.hi {
        hist.equality_selectivity(iv.lo, stats.akmv.distinct_estimate())
    } else {
        (hist.fraction_below(iv.hi, iv.hi_incl) - hist.fraction_below(iv.lo, !iv.lo_incl))
            .clamp(0.0, 1.0)
    };
    (upper, est.min(upper))
}

/// `(upper, estimate)` for a categorical membership test over the
/// precompiled dictionary-code targets.
fn in_selectivity(keys: &[u32], negated: bool, stats: &ColumnStats) -> (f64, f64) {
    // Exact dictionary: both the bound and the estimate are exact.
    if let Some(exact) = &stats.exact {
        let sel = keys
            .iter()
            .map(|&k| exact.frequency(u64::from(k)))
            .sum::<f64>()
            .clamp(0.0, 1.0);
        let sel = if negated { 1.0 - sel } else { sel };
        return (sel, sel);
    }
    if negated {
        // Cannot rule anything out without an exact dictionary.
        let (_, pos_est) = in_selectivity(keys, false, stats);
        return (1.0, (1.0 - pos_est).clamp(0.0, 1.0));
    }
    let hh_mass: f64 = stats.heavy_hitters.iter().map(|h| h.frequency).sum();
    let ndv = stats.akmv.distinct_estimate().max(1.0);
    let non_hh = (ndv - stats.heavy_hitters.len() as f64).max(1.0);
    // Average frequency of a non-heavy-hitter value.
    let tail_avg = ((1.0 - hh_mass).max(0.0) / non_hh).clamp(0.0, 1.0);
    // Not-a-local-heavy-hitter caps frequency at the support threshold.
    let support = 0.01_f64.max(tail_avg);
    let mut upper = 0.0;
    let mut est = 0.0;
    for &k in keys {
        match stats.hh_frequency(u64::from(k)) {
            Some(f) => {
                upper += f + 0.001; // lossy-counting undercount allowance (ε)
                est += f;
            }
            None => {
                // Not a local heavy hitter: frequency is below support, but
                // presence cannot be excluded.
                upper += support;
                est += tail_avg;
            }
        }
    }
    (upper.clamp(0.0, 1.0), est.clamp(0.0, 1.0))
}

/// The effective comparison operator of a compiled `Cmp` leaf: a mask
/// complement estimates like the complemented operator (selectivity has no
/// NaN rows to worry about — only the executor needs exact NaN semantics).
fn effective_op(op: CmpOp, negated: bool) -> CmpOp {
    if negated {
        op.negate()
    } else {
        op
    }
}

/// Recursive estimate of a compiled predicate node: returns
/// `(upper, indep)`, appending per-clause estimates to `clause_ests`.
///
/// Walking the *compiled* tree means dictionary targets (`IN` code sets,
/// `Contains` scans) were resolved once per query at compile time, not once
/// per partition.
fn estimate_node(
    pred: &CompiledPredicate,
    stats: &[ColumnStats],
    clause_ests: &mut Vec<f64>,
) -> (f64, f64) {
    match pred {
        CompiledPredicate::Cmp {
            col,
            op,
            value,
            negated,
        } => {
            let pair = cmp_selectivity(effective_op(*op, *negated), *value, &stats[col.index()]);
            clause_ests.push(pair.1);
            pair
        }
        CompiledPredicate::InSet { col, set, negated } => {
            let pair = in_selectivity(set.codes(), *negated, &stats[col.index()]);
            clause_ests.push(pair.1);
            pair
        }
        CompiledPredicate::And(children) => {
            let parts = jointly_evaluate(children, stats, true, clause_ests);
            let upper = parts.iter().map(|p| p.0).fold(1.0_f64, f64::min);
            let indep = parts.iter().map(|p| p.1).product::<f64>();
            (upper, indep)
        }
        CompiledPredicate::Or(children) => {
            let parts = jointly_evaluate(children, stats, false, clause_ests);
            let upper = parts.iter().map(|p| p.0).sum::<f64>().min(1.0);
            // Paper's stated rule for ORs: the min of the clause estimates.
            let indep = parts.iter().map(|p| p.1).fold(1.0_f64, f64::min);
            (upper, indep)
        }
    }
}

/// Evaluate a node's children, merging same-column `Cmp` clauses first.
///
/// Only AND nodes can merge into a single intersection; OR children stay
/// individual (their union is handled by the parent's sum/min combination).
fn jointly_evaluate(
    children: &[CompiledPredicate],
    stats: &[ColumnStats],
    is_and: bool,
    clause_ests: &mut Vec<f64>,
) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(children.len());
    if is_and {
        // Group interval-able Cmp clauses by column.
        let mut grouped: Vec<(ColId, Interval)> = Vec::new();
        let mut rest: Vec<&CompiledPredicate> = Vec::new();
        for ch in children {
            if let CompiledPredicate::Cmp {
                col,
                op,
                value,
                negated,
            } = ch
            {
                if let Some(iv) = Interval::from_cmp(effective_op(*op, *negated), *value) {
                    match grouped.iter_mut().find(|(c, _)| c == col) {
                        Some((_, acc)) => *acc = acc.intersect(&iv),
                        None => grouped.push((*col, iv)),
                    }
                    continue;
                }
            }
            rest.push(ch);
        }
        for (col, iv) in grouped {
            let pair = interval_selectivity(&iv, &stats[col.index()]);
            clause_ests.push(pair.1);
            out.push(pair);
        }
        for ch in rest {
            out.push(estimate_node(ch, stats, clause_ests));
        }
    } else {
        for ch in children {
            out.push(estimate_node(ch, stats, clause_ests));
        }
    }
    out
}

/// Compute the four selectivity features of a **pre-compiled** predicate on
/// one partition. `None` means no `WHERE` clause: everything passes.
///
/// This is the per-partition hot path of [`crate::QueryFeatures::compute`]:
/// the caller compiles the predicate once per `(query, table)` and probes
/// every partition's sketches with it.
pub fn selectivity_features_compiled(
    pred: Option<&CompiledPredicate>,
    stats: &[ColumnStats],
) -> SelectivityFeatures {
    let Some(pred) = pred else {
        return SelectivityFeatures::all_pass();
    };
    let mut clause_ests = Vec::new();
    let (upper, indep) = estimate_node(pred, stats, &mut clause_ests);
    let (min, max) = clause_ests
        .iter()
        .fold((1.0_f64, 0.0_f64), |(mn, mx), &e| (mn.min(e), mx.max(e)));
    SelectivityFeatures {
        upper: upper.clamp(0.0, 1.0),
        indep: indep.clamp(0.0, 1.0),
        min: if clause_ests.is_empty() { 1.0 } else { min },
        max: if clause_ests.is_empty() { 1.0 } else { max },
    }
}

/// Compute the four selectivity features of `query` on one partition,
/// compiling the predicate first.
///
/// `stats` holds the partition's per-column sketch bundles, indexed by
/// [`ColId`]; `table` supplies the shared categorical dictionaries the
/// compilation resolves membership targets against. Callers probing many
/// partitions should compile once and use
/// [`selectivity_features_compiled`].
pub fn selectivity_features(
    query: &Query,
    stats: &[ColumnStats],
    table: &Table,
    schema: &Schema,
) -> SelectivityFeatures {
    debug_assert_eq!(stats.len(), schema.len());
    let compiled = query
        .predicate
        .as_ref()
        .map(|p| CompiledPredicate::compile(table, p));
    selectivity_features_compiled(compiled.as_ref(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column_stats::ColumnStatsParams;
    use ps3_query::{AggExpr, Clause, Predicate, ScalarExpr};
    use ps3_storage::table::TableBuilder;
    use ps3_storage::{ColumnMeta, ColumnType};

    fn make() -> (Table, Vec<ColumnStats>, Schema) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Numeric),
            ColumnMeta::new("tag", ColumnType::Categorical),
        ]);
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..200 {
            let tag = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(&[f64::from(i)], &[tag]);
        }
        let table = b.finish();
        let params = ColumnStatsParams::default();
        let stats: Vec<ColumnStats> = schema
            .iter()
            .map(|(id, meta)| ColumnStats::build(table.column(id), meta.ctype, 0..200, &params))
            .collect();
        (table, stats, schema)
    }

    fn query(pred: Predicate) -> Query {
        Query::new(
            vec![AggExpr::sum(ScalarExpr::col(ColId(0)))],
            Some(pred),
            vec![],
        )
    }

    #[test]
    fn no_predicate_is_all_pass() {
        let (table, stats, schema) = make();
        let q = Query::new(vec![AggExpr::count()], None, vec![]);
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert_eq!(f, SelectivityFeatures::all_pass());
    }

    #[test]
    fn range_predicate_estimates() {
        let (table, stats, schema) = make();
        let q = query(Predicate::all(vec![
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Ge,
                value: 50.0,
            },
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Lt,
                value: 150.0,
            },
        ]));
        let f = selectivity_features(&q, &stats, &table, &schema);
        // True selectivity 0.5; joint evaluation should land close.
        assert!((f.indep - 0.5).abs() < 0.15, "indep {}", f.indep);
        assert!(f.upper >= f.indep);
    }

    #[test]
    fn impossible_range_has_zero_upper() {
        let (table, stats, schema) = make();
        let q = query(Predicate::all(vec![
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Gt,
                value: 150.0,
            },
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Lt,
                value: 50.0,
            },
        ]));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert_eq!(f.upper, 0.0);
        assert_eq!(f.indep, 0.0);
    }

    #[test]
    fn out_of_domain_value_zero_upper() {
        let (table, stats, schema) = make();
        let q = query(Predicate::Clause(Clause::Cmp {
            col: ColId(0),
            op: CmpOp::Gt,
            value: 1e6,
        }));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert_eq!(f.upper, 0.0);
    }

    #[test]
    fn categorical_exact_dict_is_exact() {
        let (table, stats, schema) = make();
        let q = query(Predicate::Clause(Clause::str_eq(ColId(1), "even")));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert!((f.indep - 0.5).abs() < 1e-9, "indep {}", f.indep);
        assert!((f.upper - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_string_value_zero() {
        let (table, stats, schema) = make();
        let q = query(Predicate::Clause(Clause::str_eq(ColId(1), "nope")));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert_eq!(f.upper, 0.0);
        assert_eq!(f.indep, 0.0);
    }

    #[test]
    fn or_upper_is_capped_sum() {
        let (table, stats, schema) = make();
        let q = query(Predicate::any(vec![
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Lt,
                value: 100.0,
            },
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Ge,
                value: 100.0,
            },
        ]));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert!(f.upper > 0.9);
        assert!(f.upper <= 1.0);
        // Paper rule: indep of an OR is the min of the clause estimates.
        assert!(f.indep <= 0.6);
    }

    #[test]
    fn negation_through_nnf() {
        let (table, stats, schema) = make();
        let q = query(Predicate::Not(Box::new(Predicate::Clause(Clause::Cmp {
            col: ColId(0),
            op: CmpOp::Lt,
            value: 100.0,
        }))));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert!((f.indep - 0.5).abs() < 0.15, "indep {}", f.indep);
    }

    #[test]
    fn min_max_track_clause_estimates() {
        let (table, stats, schema) = make();
        let q = query(Predicate::all(vec![
            Clause::Cmp {
                col: ColId(0),
                op: CmpOp::Lt,
                value: 20.0,
            }, // ~0.1
            Clause::str_eq(ColId(1), "even"), // 0.5
        ]));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert!(f.min < 0.2);
        assert!((f.max - 0.5).abs() < 0.05);
    }

    #[test]
    fn contains_matches_dictionary() {
        let (table, stats, schema) = make();
        let q = query(Predicate::Clause(Clause::Contains {
            col: ColId(1),
            needle: "ev".into(),
            negated: false,
        }));
        let f = selectivity_features(&q, &stats, &table, &schema);
        assert!((f.indep - 0.5).abs() < 1e-9);
    }
}
