//! The statistics builder (§2.3.1, §3): per-partition summary statistics and
//! the query-time feature vectors derived from them.
//!
//! * [`column_stats`] — the per-(partition, column) sketch bundle.
//! * [`builder`] — builds [`TableStats`] for a whole partitioned table
//!   (in parallel), including the global heavy-hitter lists and the
//!   per-partition occurrence bitmaps of §3.2.
//! * [`selectivity`] — the four selectivity features (`upper`, `indep`,
//!   `min`, `max`) estimated from histograms/dictionaries, with
//!   `selectivity_upper`'s perfect-recall guarantee.
//! * [`features`] — the feature-vector schema of Table 2 and query-dependent
//!   masking.
//! * [`normalize`] — Appendix B normalization (log / cube-root transform,
//!   then division by training-set means).
//! * [`persist`] — bit-exact byte codec for the whole catalog (the `STATS`
//!   section of the flat artifact format).

pub mod builder;
pub mod column_stats;
pub mod features;
pub mod normalize;
pub mod persist;
pub mod selectivity;

pub use builder::{StatsConfig, StorageBreakdown, TableStats};
pub use column_stats::ColumnStats;
pub use features::{FeatureSchema, FeatureType, QueryFeatures};
pub use normalize::Normalizer;
pub use selectivity::{selectivity_features_compiled, SelectivityFeatures};
