//! Feature normalization (Appendix B): a log transform tames the skew of all
//! summary statistics except the selectivity estimates, which get a cube
//! root; each dimension is then divided by its average over the training set
//! (the average is more outlier-robust than the max).

use crate::features::FeatureSchema;

/// Fitted normalization state: per-dimension training means of the
/// transformed features.
#[derive(Debug, Clone)]
pub struct Normalizer {
    schema: FeatureSchema,
    /// Per-dimension mean of transformed values; 1.0 where the mean was 0
    /// (constant-zero features pass through unchanged).
    means: Vec<f64>,
}

/// The per-value transform: cube root for selectivity features, signed
/// `ln(1+|x|)` otherwise.
#[inline]
fn transform(x: f64, is_selectivity: bool) -> f64 {
    if is_selectivity {
        x.cbrt()
    } else {
        x.signum() * x.abs().ln_1p()
    }
}

impl Normalizer {
    /// Fit means over a set of training feature matrices.
    pub fn fit<'a>(
        schema: FeatureSchema,
        matrices: impl IntoIterator<Item = &'a Vec<Vec<f64>>>,
    ) -> Self {
        let dim = schema.dim();
        let is_sel: Vec<bool> = (0..dim)
            .map(|i| schema.type_of(i).is_selectivity())
            .collect();
        let mut sums = vec![0.0f64; dim];
        let mut n = 0usize;
        for m in matrices {
            for row in m {
                debug_assert_eq!(row.len(), dim);
                for (i, &x) in row.iter().enumerate() {
                    sums[i] += transform(x, is_sel[i]).abs();
                }
                n += 1;
            }
        }
        let means = sums
            .into_iter()
            .map(|s| {
                let mean = if n > 0 { s / n as f64 } else { 0.0 };
                if mean.abs() < 1e-12 {
                    1.0
                } else {
                    mean
                }
            })
            .collect();
        Self { schema, means }
    }

    /// An identity normalizer (transform only, no scaling).
    pub fn identity(schema: FeatureSchema) -> Self {
        Self {
            means: vec![1.0; schema.dim()],
            schema,
        }
    }

    /// Normalize one feature row in place.
    pub fn apply_row(&self, row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.schema.dim());
        for (i, x) in row.iter_mut().enumerate() {
            let is_sel = self.schema.type_of(i).is_selectivity();
            *x = transform(*x, is_sel) / self.means[i];
        }
    }

    /// Normalize a whole matrix in place.
    pub fn apply_matrix(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.apply_row(row);
        }
    }

    /// The feature layout this normalizer was fitted for.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The fitted per-dimension means, for persistence.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Rebuild a fitted normalizer from persisted parts. Fails when the
    /// mean vector does not match the schema's dimension (a corrupt
    /// artifact), since `apply_row` indexes `means` by dimension.
    pub fn from_raw_parts(schema: FeatureSchema, means: Vec<f64>) -> Result<Self, &'static str> {
        if means.len() != schema.dim() {
            return Err("normalizer mean vector does not match feature dimension");
        }
        Ok(Self { schema, means })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::SELECTIVITY_FEATURES;

    fn tiny_schema() -> FeatureSchema {
        FeatureSchema::new(1)
    }

    #[test]
    fn transform_shapes() {
        assert_eq!(transform(0.0, false), 0.0);
        assert!(transform(100.0, false) < 100.0);
        assert!(transform(-5.0, false) < 0.0);
        assert!((transform(0.125, true) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_then_apply_scales_to_unit_mean() {
        let schema = tiny_schema();
        let dim = schema.dim();
        let mut m = vec![vec![0.0; dim]; 4];
        // Dimension 0 (mean(x)) takes values 1..4.
        for (i, row) in m.iter_mut().enumerate() {
            row[0] = (i + 1) as f64;
        }
        let norm = Normalizer::fit(schema, [&m]);
        let mut m2 = m.clone();
        norm.apply_matrix(&mut m2);
        let avg: f64 = m2.iter().map(|r| r[0]).sum::<f64>() / 4.0;
        assert!((avg - 1.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn zero_dimensions_pass_through() {
        let schema = tiny_schema();
        let m = vec![vec![0.0; schema.dim()]; 3];
        let norm = Normalizer::fit(schema, [&m]);
        let mut row = vec![0.0; schema.dim()];
        norm.apply_row(&mut row);
        assert!(row.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn selectivity_uses_cube_root() {
        let schema = tiny_schema();
        let norm = Normalizer::identity(schema);
        let mut row = vec![0.0; schema.dim()];
        let sel = schema.selectivity_offset();
        row[sel] = 0.001;
        norm.apply_row(&mut row);
        assert!((row[sel] - 0.1).abs() < 1e-12);
        assert_eq!(sel + SELECTIVITY_FEATURES, schema.dim());
    }

    #[test]
    fn identity_keeps_scale_free_of_training_set() {
        let schema = tiny_schema();
        let norm = Normalizer::identity(schema);
        let mut row = vec![1.0; schema.dim()];
        norm.apply_row(&mut row);
        // ln(2) for non-selectivity dims.
        assert!((row[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
