//! Clustering for PS3's similarity-aware sample selection (§4.2, §5.5.5).
//!
//! The paper samples by clustering partition feature vectors into as many
//! clusters as the sampling budget and reading one *exemplar* per cluster
//! with weight = cluster size. Two algorithm families are evaluated:
//!
//! * [`mod@kmeans`] — Lloyd's algorithm with k-means++ seeding, plus the
//!   mini-batch variant [`cluster`] auto-selects on large inputs,
//! * [`mod@hac`] — hierarchical agglomerative clustering via the nearest-neighbor
//!   chain algorithm, with *single* and *Ward* linkage (Table 6).
//!
//! [`exemplar`] implements both estimators of Appendix D: the biased
//! median-nearest exemplar and the unbiased uniform-random exemplar.
//!
//! The numeric inner loops live in [`mod@simd`] (blocked, SIMD-friendly,
//! deterministic accumulation order) with scalar mirrors in `oracle`;
//! set `PS3_STRICT_KERNELS=1` to assert kernel/oracle bit-identity inside
//! every k-means call.

pub mod exemplar;
pub mod hac;
pub mod kmeans;
#[doc(hidden)]
pub mod oracle;
pub mod simd;

pub use exemplar::{median_exemplar, random_exemplar};
pub use hac::{hac, Linkage};
pub use kmeans::{kmeans, kmeans_fit, kmeans_minibatch, kmeans_warm, KmeansFit};

use rand::rngs::StdRng;
use std::sync::OnceLock;

/// Point count at or above which [`cluster`] swaps exact Lloyd for
/// mini-batch k-means under [`ClusterAlgo::KMeans`]. Mini-batch visits
/// `MINIBATCH_EPOCHS · n` rows total versus Lloyd's `sweeps · n`, so below
/// this size exact Lloyd is both cheaper and better.
pub const MINIBATCH_MIN_POINTS: usize = 512;

/// Which clustering algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAlgo {
    /// Lloyd's k-means with k-means++ seeding; [`cluster`] upgrades this to
    /// mini-batch k-means at [`MINIBATCH_MIN_POINTS`] points and beyond.
    KMeans,
    /// Exact Lloyd regardless of input size — the config knob the oracle
    /// tests and strict-determinism deployments pin.
    KMeansExact,
    /// Agglomerative, single linkage.
    HacSingle,
    /// Agglomerative, Ward linkage.
    HacWard,
}

impl ClusterAlgo {
    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ClusterAlgo::KMeans => "KMeans",
            ClusterAlgo::KMeansExact => "KMeans(exact)",
            ClusterAlgo::HacSingle => "HAC(single)",
            ClusterAlgo::HacWard => "HAC(ward)",
        }
    }
}

/// Whether `PS3_STRICT_KERNELS=1` is set: every k-means call re-runs the
/// scalar oracle and asserts bit-identity with the blocked kernels. Cached
/// once per process; CI runs the cluster tests under it.
pub fn strict_kernels() -> bool {
    static STRICT: OnceLock<bool> = OnceLock::new();
    *STRICT.get_or_init(|| std::env::var("PS3_STRICT_KERNELS").is_ok_and(|v| v == "1"))
}

/// Drop dimensions that are exactly 0.0 in every point. Partition feature
/// matrices are sparse (a predicate-column vocabulary much wider than any
/// one workload touches), and an all-zero dimension contributes exactly
/// 0.0 to every pairwise distance — removing it is distance-exact, though
/// it changes lane alignment (hence bits), which is why pruning happens
/// here at the [`cluster`] boundary and never inside the oracle-compared
/// kernels. NaN ≠ 0.0, so NaN-carrying dimensions are always kept.
fn prune_zero_dims(points: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let dim = points.first().map_or(0, Vec::len);
    let live: Vec<usize> = (0..dim)
        .filter(|&d| points.iter().any(|p| p[d] != 0.0))
        .collect();
    if live.len() == dim {
        return None;
    }
    Some(
        points
            .iter()
            .map(|p| live.iter().map(|&d| p[d]).collect())
            .collect(),
    )
}

/// Cluster `points` into (at most) `k` clusters; returns member-index lists.
///
/// Fewer than `k` clusters come back when there are fewer points. All-zero
/// dimensions are pruned up front (distance-exact; see [`mod@simd`]), and
/// [`ClusterAlgo::KMeans`] switches to mini-batch k-means at
/// [`MINIBATCH_MIN_POINTS`] points — pin [`ClusterAlgo::KMeansExact`] to
/// keep full Lloyd at any size.
pub fn cluster(
    points: &[Vec<f64>],
    k: usize,
    algo: ClusterAlgo,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    if points.len() <= k {
        return (0..points.len()).map(|i| vec![i]).collect();
    }
    let pruned = prune_zero_dims(points);
    let points: &[Vec<f64>] = pruned.as_deref().unwrap_or(points);
    match algo {
        ClusterAlgo::KMeans if points.len() >= MINIBATCH_MIN_POINTS => {
            kmeans::kmeans_minibatch(points, k, rng, 0)
        }
        ClusterAlgo::KMeans | ClusterAlgo::KMeansExact => {
            // Lloyd's cost per iteration is n·k·dim; on very large problems
            // (thousands of partitions at high budgets, Figure 8) cap the
            // iteration count — assignments stabilize long before 25 rounds
            // and the picker only needs approximate strata.
            let max_iter = if points.len() * k > 250_000 { 8 } else { 25 };
            kmeans(points, k, rng, max_iter)
        }
        ClusterAlgo::HacSingle => hac(points, k, Linkage::Single),
        ClusterAlgo::HacWard => hac(points, k, Linkage::Ward),
    }
}

/// Squared Euclidean distance — the blocked kernel; see [`simd::dist_sq`].
#[inline]
pub(crate) fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    simd::dist_sq(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + f64::from(i) * 0.01, 0.0]);
            pts.push(vec![10.0 + f64::from(i) * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn every_algo_partitions_all_points() {
        let pts = two_blobs();
        for algo in [
            ClusterAlgo::KMeans,
            ClusterAlgo::KMeansExact,
            ClusterAlgo::HacSingle,
            ClusterAlgo::HacWard,
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let clusters = cluster(&pts, 2, algo, &mut rng);
            assert_eq!(clusters.len(), 2, "{algo:?}");
            let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{algo:?}");
            // Blobs are well separated: each cluster holds one parity class.
            for c in &clusters {
                let parities: std::collections::HashSet<usize> = c.iter().map(|&i| i % 2).collect();
                assert_eq!(parities.len(), 1, "{algo:?} mixed the blobs");
            }
        }
    }

    #[test]
    fn k_larger_than_points_gives_singletons() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(0);
        let clusters = cluster(&pts, 10, ClusterAlgo::KMeans, &mut rng);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(cluster(&[], 3, ClusterAlgo::KMeans, &mut rng).is_empty());
        assert!(cluster(&[vec![1.0]], 0, ClusterAlgo::HacWard, &mut rng).is_empty());
    }

    #[test]
    fn zero_dim_pruning_is_invisible_to_results() {
        // Blob structure carried by 2 of 40 dims, the rest all-zero:
        // clustering must behave exactly as if the zeros weren't there.
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let mut row = vec![0.0f64; 40];
                row[7] = f64::from(i % 2) * 10.0 + f64::from(i) * 0.01;
                row[23] = f64::from(i % 2) * 10.0;
                row
            })
            .collect();
        for algo in [ClusterAlgo::KMeans, ClusterAlgo::HacWard] {
            let mut rng = StdRng::seed_from_u64(1);
            let clusters = cluster(&pts, 2, algo, &mut rng);
            assert_eq!(clusters.len(), 2, "{algo:?}");
            for c in &clusters {
                let parities: std::collections::HashSet<usize> = c.iter().map(|&i| i % 2).collect();
                assert_eq!(parities.len(), 1, "{algo:?} mixed the blobs after pruning");
            }
        }
    }

    #[test]
    fn minibatch_auto_select_kicks_in_at_threshold() {
        // At ≥ MINIBATCH_MIN_POINTS points KMeans and KMeansExact may take
        // different paths but both must partition every point.
        let n = MINIBATCH_MIN_POINTS;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![f64::from((i % 4) as u32) * 100.0, f64::from((i % 9) as u32)])
            .collect();
        for algo in [ClusterAlgo::KMeans, ClusterAlgo::KMeansExact] {
            let mut rng = StdRng::seed_from_u64(5);
            let clusters = cluster(&pts, 4, algo, &mut rng);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "{algo:?}");
        }
    }
}
