//! Clustering for PS3's similarity-aware sample selection (§4.2, §5.5.5).
//!
//! The paper samples by clustering partition feature vectors into as many
//! clusters as the sampling budget and reading one *exemplar* per cluster
//! with weight = cluster size. Two algorithm families are evaluated:
//!
//! * [`mod@kmeans`] — Lloyd's algorithm with k-means++ seeding,
//! * [`mod@hac`] — hierarchical agglomerative clustering via the nearest-neighbor
//!   chain algorithm, with *single* and *Ward* linkage (Table 6).
//!
//! [`exemplar`] implements both estimators of Appendix D: the biased
//! median-nearest exemplar and the unbiased uniform-random exemplar.

pub mod exemplar;
pub mod hac;
pub mod kmeans;

pub use exemplar::{median_exemplar, random_exemplar};
pub use hac::{hac, Linkage};
pub use kmeans::kmeans;

use rand::rngs::StdRng;

/// Which clustering algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAlgo {
    /// Lloyd's k-means with k-means++ seeding.
    KMeans,
    /// Agglomerative, single linkage.
    HacSingle,
    /// Agglomerative, Ward linkage.
    HacWard,
}

impl ClusterAlgo {
    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ClusterAlgo::KMeans => "KMeans",
            ClusterAlgo::HacSingle => "HAC(single)",
            ClusterAlgo::HacWard => "HAC(ward)",
        }
    }
}

/// Cluster `points` into (at most) `k` clusters; returns member-index lists.
///
/// Fewer than `k` clusters come back when there are fewer points.
pub fn cluster(
    points: &[Vec<f64>],
    k: usize,
    algo: ClusterAlgo,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    if points.len() <= k {
        return (0..points.len()).map(|i| vec![i]).collect();
    }
    match algo {
        ClusterAlgo::KMeans => {
            // Lloyd's cost per iteration is n·k·dim; on very large problems
            // (thousands of partitions at high budgets, Figure 8) cap the
            // iteration count — assignments stabilize long before 25 rounds
            // and the picker only needs approximate strata.
            let max_iter = if points.len() * k > 250_000 { 8 } else { 25 };
            kmeans(points, k, rng, max_iter)
        }
        ClusterAlgo::HacSingle => hac(points, k, Linkage::Single),
        ClusterAlgo::HacWard => hac(points, k, Linkage::Ward),
    }
}

/// Squared Euclidean distance.
#[inline]
pub(crate) fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + f64::from(i) * 0.01, 0.0]);
            pts.push(vec![10.0 + f64::from(i) * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn every_algo_partitions_all_points() {
        let pts = two_blobs();
        for algo in [
            ClusterAlgo::KMeans,
            ClusterAlgo::HacSingle,
            ClusterAlgo::HacWard,
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let clusters = cluster(&pts, 2, algo, &mut rng);
            assert_eq!(clusters.len(), 2, "{algo:?}");
            let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{algo:?}");
            // Blobs are well separated: each cluster holds one parity class.
            for c in &clusters {
                let parities: std::collections::HashSet<usize> = c.iter().map(|&i| i % 2).collect();
                assert_eq!(parities.len(), 1, "{algo:?} mixed the blobs");
            }
        }
    }

    #[test]
    fn k_larger_than_points_gives_singletons() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(0);
        let clusters = cluster(&pts, 10, ClusterAlgo::KMeans, &mut rng);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(cluster(&[], 3, ClusterAlgo::KMeans, &mut rng).is_empty());
        assert!(cluster(&[vec![1.0]], 0, ClusterAlgo::HacWard, &mut rng).is_empty());
    }
}
