//! Exemplar selection: which cluster member answers for the whole cluster.
//!
//! Appendix D defines two estimators. The **biased** one deterministically
//! picks the member closest to the cluster's per-dimension *median* feature
//! vector (§4.2) — zero variance, empirically better at small budgets. The
//! **unbiased** one picks a uniform random member, making the clustered
//! estimator a textbook stratified sampler.

use rand::rngs::StdRng;
use rand::Rng;

use crate::dist_sq;

/// The member of `cluster` whose feature vector is closest to the cluster's
/// per-dimension median (the paper's deterministic exemplar).
///
/// # Panics
/// Panics on an empty cluster.
pub fn median_exemplar(points: &[Vec<f64>], cluster: &[usize]) -> usize {
    assert!(!cluster.is_empty(), "empty cluster");
    if cluster.len() == 1 {
        return cluster[0];
    }
    let dim = points[cluster[0]].len();
    let mut median = vec![0.0; dim];
    let mut scratch: Vec<f64> = Vec::with_capacity(cluster.len());
    for (d, m) in median.iter_mut().enumerate() {
        scratch.clear();
        scratch.extend(cluster.iter().map(|&i| points[i][d]));
        scratch.sort_by(f64::total_cmp);
        let mid = scratch.len() / 2;
        *m = if scratch.len() % 2 == 1 {
            scratch[mid]
        } else {
            0.5 * (scratch[mid - 1] + scratch[mid])
        };
    }
    cluster
        .iter()
        .copied()
        .min_by(|&a, &b| {
            dist_sq(&points[a], &median)
                .total_cmp(&dist_sq(&points[b], &median))
                .then(a.cmp(&b))
        })
        .expect("non-empty cluster")
}

/// A uniform random member (the unbiased estimator of Appendix D.1).
pub fn random_exemplar(cluster: &[usize], rng: &mut StdRng) -> usize {
    assert!(!cluster.is_empty(), "empty cluster");
    cluster[rng.gen_range(0..cluster.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn median_member_wins() {
        let points = vec![
            vec![0.0],
            vec![5.0], // closest to the median (4.0)
            vec![4.0], // exactly the median... see below
            vec![100.0],
        ];
        // cluster of all: medians of {0,5,4,100} = (4+5)/2 = 4.5 → point 2
        // (4.0) at distance 0.5 beats point 1 (5.0) at 0.5? tie → lower idx 1?
        // distances: p1=0.5, p2=0.5 → tie broken by index: picks 1.
        let e = median_exemplar(&points, &[0, 1, 2, 3]);
        assert!(e == 1 || e == 2);
        // Odd-sized cluster: median of {0,5,4} = 4 → exemplar is point 2.
        assert_eq!(median_exemplar(&points, &[0, 1, 2]), 2);
    }

    #[test]
    fn singleton_cluster() {
        let points = vec![vec![1.0], vec![2.0]];
        assert_eq!(median_exemplar(&points, &[1]), 1);
    }

    #[test]
    fn median_is_outlier_robust() {
        // 9 points near 0, one at 1e6: the exemplar must be from the bulk.
        let mut points: Vec<Vec<f64>> = (0..9).map(|i| vec![f64::from(i) * 0.1]).collect();
        points.push(vec![1e6]);
        let cluster: Vec<usize> = (0..10).collect();
        let e = median_exemplar(&points, &cluster);
        assert!(e < 9, "picked the outlier");
    }

    #[test]
    fn random_exemplar_is_member_and_seeded() {
        let cluster = vec![3, 7, 11];
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let ea = random_exemplar(&cluster, &mut a);
        let eb = random_exemplar(&cluster, &mut b);
        assert_eq!(ea, eb);
        assert!(cluster.contains(&ea));
    }

    #[test]
    fn random_exemplar_covers_all_members_eventually() {
        let cluster = vec![1, 2, 3];
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(random_exemplar(&cluster, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
