//! Scalar reference implementations of the blocked kernels in
//! [`crate::simd`] — the "oracle" side of the kernel/oracle discipline.
//!
//! Everything here is written with plain index arithmetic and no iterator
//! adapters, but it commits to the **same accumulation spec** as the
//! kernels: eight lane accumulators selected by `i % LANES`, the same fixed
//! pairwise combine tree, per-[`crate::simd::UPDATE_BLOCK`] partial sums
//! merged in ascending block order, the same k-means++ RNG draw sequence,
//! and the same empty-cluster reseed rule. IEEE addition is not
//! associative, so the grouping *is* the definition — two independently
//! written implementations of the same grouping must agree to the bit,
//! and `tests/kernel_oracle.rs` plus `PS3_STRICT_KERNELS=1` hold them to
//! it (NaN and ±0.0 inputs included).
//!
//! This module is `#[doc(hidden)]` public so integration tests and the
//! strict-mode assertions can reach it; it is not part of the crate's API.

use rand::rngs::StdRng;
use rand::Rng;

use crate::kmeans::KmeansFit;
use crate::simd::{LANES, UPDATE_BLOCK};

/// Scalar mirror of [`crate::simd::dist_sq`]: lane `i % LANES` accumulates
/// element `i`, the lanes combine by the shared pairwise tree, and the tail
/// past the last full lane-group adds sequentially.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let full = (a.len() / LANES) * LANES;
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i < full {
        let d = a[i] - b[i];
        acc[i % LANES] += d * d;
        i += 1;
    }
    let mut sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    while i < a.len() {
        let d = a[i] - b[i];
        sum += d * d;
        i += 1;
    }
    sum
}

/// Scalar mirror of [`crate::simd::nearest_centroid`]: strict `<` from
/// `(0, ∞)` — ties keep the lowest index, NaN never wins.
fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist_sq(row, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Scalar mirror of [`crate::kmeans::kmeans_fit`]: identical RNG draws,
/// identical blocked accumulation, identical reseed rule — bit-identical
/// output, arrived at through none of the kernel code.
///
/// # Panics
/// Panics when `k == 0` or there are fewer points than `k`.
pub fn kmeans_fit(points: &[Vec<f64>], k: usize, rng: &mut StdRng, max_iter: usize) -> KmeansFit {
    assert!(k > 0 && points.len() >= k);
    let n = points.len();
    let dim = points[0].len();
    let mut centroids = pp_init(points, k, rng);
    let mut assignment = vec![0usize; n];
    let mut sweeps = 0usize;
    let mut converged = false;

    for _ in 0..max_iter {
        sweeps += 1;
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        let mut changed = false;

        // Per-block partial sums, merged ascending — the grouping the
        // blocked kernel defines.
        let blocks = n.div_ceil(UPDATE_BLOCK).max(1);
        for b in 0..blocks {
            let start = b * UPDATE_BLOCK;
            let end = (start + UPDATE_BLOCK).min(n);
            let mut bsums = vec![vec![0.0f64; dim]; k];
            let mut bcounts = vec![0usize; k];
            for i in start..end {
                let best = nearest(&points[i], &centroids);
                if assignment[i] != best {
                    changed = true;
                }
                assignment[i] = best;
                bcounts[best] += 1;
                for d in 0..dim {
                    bsums[best][d] += points[i][d];
                }
            }
            for c in 0..k {
                counts[c] += bcounts[c];
                for d in 0..dim {
                    sums[c][d] += bsums[c][d];
                }
            }
        }

        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let mut far = 0usize;
                let mut far_d = f64::NEG_INFINITY;
                for i in 0..n {
                    let d = dist_sq(&points[i], &centroids[assignment[i]]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c] = points[far].clone();
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    KmeansFit {
        centroids,
        assignment,
        sweeps,
        converged,
    }
}

/// Scalar mirror of the kernel's k-means++ seeding: one `gen_range(0..n)`
/// for the first center, then per additional center a sequential sum of
/// `d2` and one `gen_range(0.0..total)` (or `gen_range(0..n)` when the
/// total is not positive), walking `d2` to find the index.
fn pp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let first = rng.gen_range(0..n);
    let mut centroids = vec![points[first].clone()];
    let mut d2: Vec<f64> = (0..n).map(|i| dist_sq(&points[i], &centroids[0])).collect();
    while centroids.len() < k {
        let mut total = 0.0f64;
        for &d in &d2 {
            total += d;
        }
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0usize;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(points[next].clone());
        let newest = centroids.len() - 1;
        for i in 0..n {
            let d = dist_sq(&points[i], &centroids[newest]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}
