//! Blocked, SIMD-friendly distance kernels for the training path.
//!
//! Everything clustering-shaped in this crate bottoms out in squared
//! Euclidean distance over `f64` rows. The scalar `iter().zip().sum()`
//! formulation chains every addition through one accumulator, which pins
//! LLVM to scalar code (IEEE addition is not associative, so the compiler
//! may not regroup it). The kernels here commit to a **fixed blocked
//! accumulation order** instead: [`LANES`] independent accumulators over
//! `chunks_exact(LANES)`, combined by a fixed pairwise tree, then a
//! sequential tail. That breaks the dependency chain (so the loop
//! autovectorizes) while keeping the result a deterministic function of the
//! input — the same bits on every machine, every run.
//!
//! The k-means update step is blocked the same way: rows are processed in
//! [`UPDATE_BLOCK`]-sized blocks, each block accumulating its own partial
//! per-cluster sums in ascending row order, and the block partials are
//! merged in ascending block order. Because the merge order is fixed, a
//! parallel fan-out of the blocks over the shared pool is **bit-identical**
//! to the serial pass — which is what lets `assign_update` fan out on large
//! partition counts without breaking the kernel/oracle contract.
//!
//! `ps3_cluster::oracle` re-implements these definitions with plain index
//! arithmetic (no iterator adapters, no blocking of the code itself) and
//! the property tests in `tests/kernel_oracle.rs` hold the two bit-equal,
//! including NaN and ±0.0 feature values. `PS3_STRICT_KERNELS=1`
//! additionally forces the comparison inside every [`crate::kmeans_fit`] call.

use ps3_runtime::ThreadPool;

/// Independent accumulator lanes in the distance kernels. Eight `f64`
/// accumulators fill an AVX-512 register and give AVX2 two independent
/// 4-wide chains — enough ILP either way.
pub const LANES: usize = 8;

/// Rows per partial-sum block in [`assign_update`]. One block of 64 rows ×
/// a few hundred dims stays in L1/L2 while its partial sums are live.
pub const UPDATE_BLOCK: usize = 64;

/// Fan out [`assign_update`] over the shared pool only past this much work
/// (rows × dims); below it the pool hand-off costs more than it saves.
/// Purely a performance threshold — the blocked merge order makes the
/// parallel and serial results bit-identical.
const PARALLEL_MIN_CELLS: usize = 1 << 18;

/// Combine the eight lane accumulators by the fixed pairwise tree shared
/// with the oracle. The grouping is part of the kernel's definition: change
/// it and every stored distance changes bits.
#[inline(always)]
fn combine(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Blocked squared Euclidean distance: 8 independent lanes over the full
/// chunks, pairwise-combined, then the tail added sequentially in index
/// order. NaN in either input propagates to the result, exactly as the
/// scalar formulation would.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    let mut sum = combine(acc);
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Blocked dot product with the same lane structure as [`dist_sq`].
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    let mut sum = combine(acc);
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        sum += x * y;
    }
    sum
}

/// Squared L2 norm (`dot(a, a)`), the precomputation behind the
/// ‖x−c‖² = ‖x‖² − 2x·c + ‖c‖² expansion used where no bit-identity
/// contract binds (HAC matrix init, the mini-batch interior).
#[inline]
pub fn sq_norm(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Row-major flat matrix of points — the contiguous layout the kernels
/// want. `Vec<Vec<f64>>` inputs are packed once at the boundary.
#[derive(Debug, Clone)]
pub struct PointMatrix {
    data: Vec<f64>,
    n: usize,
    dim: usize,
}

impl PointMatrix {
    /// Pack `rows` (all of equal length) into one contiguous buffer.
    ///
    /// # Panics
    /// Panics if rows disagree on length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "ragged point matrix");
            data.extend_from_slice(r);
        }
        Self {
            data,
            n: rows.len(),
            dim,
        }
    }

    /// Build from an already-flat buffer of `n` rows × `dim`.
    pub fn from_flat(data: Vec<f64>, n: usize, dim: usize) -> Self {
        assert_eq!(data.len(), n * dim);
        Self { data, n, dim }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Rows unpacked back into `Vec<Vec<f64>>` (the crate's public shape).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|i| self.row(i).to_vec()).collect()
    }

    /// `sq_norm` of every row.
    pub fn row_norms(&self) -> Vec<f64> {
        (0..self.n).map(|i| sq_norm(self.row(i))).collect()
    }
}

/// Index of the nearest centroid to `row`, by blocked [`dist_sq`], with its
/// distance. Strict `<` comparison from `(0, ∞)`: ties keep the lowest
/// index and NaN distances never win, so an all-NaN row stays on centroid 0
/// — the same rule the scalar implementation always had.
#[inline]
pub fn nearest_centroid(row: &[f64], centroids: &PointMatrix) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.n() {
        let d = dist_sq(row, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Per-cluster output of one fused assign-then-update pass.
#[derive(Debug, Clone)]
pub struct AssignUpdate {
    /// Per-cluster coordinate sums, merged from block partials in ascending
    /// block order.
    pub sums: Vec<Vec<f64>>,
    /// Per-cluster member counts.
    pub counts: Vec<usize>,
    /// Whether any row changed assignment this pass.
    pub changed: bool,
}

/// One block's partial results: per-cluster sums, per-cluster counts, the
/// block's new assignments in row order, and whether any row moved.
type BlockPartial = (Vec<Vec<f64>>, Vec<usize>, Vec<usize>, bool);

/// One partial-sum block: rows `[start, end)` assigned and accumulated in
/// ascending row order. This is the unit both the serial pass and the
/// parallel fan-out execute; the caller merges blocks in ascending order.
fn assign_update_block(
    points: &PointMatrix,
    centroids: &PointMatrix,
    assignment: &[usize],
    start: usize,
    end: usize,
) -> BlockPartial {
    let k = centroids.n();
    let dim = points.dim();
    let mut sums = vec![vec![0.0f64; dim]; k];
    let mut counts = vec![0usize; k];
    let mut assigned = Vec::with_capacity(end - start);
    let mut changed = false;
    for (i, &home) in assignment.iter().enumerate().take(end).skip(start) {
        let row = points.row(i);
        let (best, _) = nearest_centroid(row, centroids);
        if home != best {
            changed = true;
        }
        assigned.push(best);
        counts[best] += 1;
        for (s, &x) in sums[best].iter_mut().zip(row) {
            *s += x;
        }
    }
    (sums, counts, assigned, changed)
}

/// The chunked assign-then-update k-means step: touch every row exactly
/// once, writing its nearest centroid into `assignment` and accumulating
/// per-cluster sums in [`UPDATE_BLOCK`]-row blocks. Blocks run on the
/// shared pool when the matrix is large enough to pay for the hand-off;
/// either way the block partials merge in ascending block order, so the
/// result is bit-identical to the serial pass (and to the oracle).
pub fn assign_update(
    points: &PointMatrix,
    centroids: &PointMatrix,
    assignment: &mut [usize],
) -> AssignUpdate {
    let n = points.n();
    let k = centroids.n();
    let dim = points.dim();
    let blocks = n.div_ceil(UPDATE_BLOCK).max(1);
    let parallel = blocks > 1 && n * dim >= PARALLEL_MIN_CELLS;

    let per_block: Vec<BlockPartial> = if parallel {
        let assignment_ref: &[usize] = assignment;
        ThreadPool::global().scope_map(blocks, |b| {
            let start = b * UPDATE_BLOCK;
            let end = (start + UPDATE_BLOCK).min(n);
            assign_update_block(points, centroids, assignment_ref, start, end)
        })
    } else {
        (0..blocks)
            .map(|b| {
                let start = b * UPDATE_BLOCK;
                let end = (start + UPDATE_BLOCK).min(n);
                assign_update_block(points, centroids, assignment, start, end)
            })
            .collect()
    };

    let mut sums = vec![vec![0.0f64; dim]; k];
    let mut counts = vec![0usize; k];
    let mut changed = false;
    for (b, (bsums, bcounts, assigned, bchanged)) in per_block.into_iter().enumerate() {
        let start = b * UPDATE_BLOCK;
        assignment[start..start + assigned.len()].copy_from_slice(&assigned);
        changed |= bchanged;
        for c in 0..k {
            counts[c] += bcounts[c];
            for (s, &x) in sums[c].iter_mut().zip(&bsums[c]) {
                *s += x;
            }
        }
    }
    AssignUpdate {
        sums,
        counts,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_sq_matches_naive_on_clean_input() {
        let a: Vec<f64> = (0..21).map(f64::from).collect();
        let b: Vec<f64> = (0..21).map(|i| f64::from(i) * 0.5).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((dist_sq(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    fn dist_sq_propagates_nan() {
        let a = vec![1.0, f64::NAN, 3.0];
        let b = vec![1.0, 2.0, 3.0];
        assert!(dist_sq(&a, &b).is_nan());
    }

    #[test]
    fn dot_and_norm_agree() {
        let a: Vec<f64> = (0..13).map(|i| f64::from(i) - 6.0).collect();
        assert_eq!(sq_norm(&a), dot(&a, &a));
    }

    #[test]
    fn matrix_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = PointMatrix::from_rows(&rows);
        assert_eq!(m.n(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.to_rows(), rows);
    }

    #[test]
    fn nearest_keeps_lowest_index_on_tie_and_nan() {
        let centroids = PointMatrix::from_rows(&[vec![0.0], vec![0.0], vec![2.0]]);
        let (c, d) = nearest_centroid(&[0.0], &centroids);
        assert_eq!((c, d), (0, 0.0));
        let (c, d) = nearest_centroid(&[f64::NAN], &centroids);
        assert_eq!(c, 0, "all-NaN distances stay on centroid 0");
        assert!(d.is_infinite());
    }

    #[test]
    fn assign_update_parallel_threshold_is_invisible() {
        // 3 blocks, below the parallel threshold: still blocked, so the
        // merge-order spec is exercised without the pool.
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![f64::from(i % 10), f64::from(i / 10)])
            .collect();
        let points = PointMatrix::from_rows(&rows);
        let centroids = PointMatrix::from_rows(&[rows[0].clone(), rows[75].clone()]);
        let mut a1 = vec![0usize; 150];
        let out1 = assign_update(&points, &centroids, &mut a1);
        let mut a2 = vec![0usize; 150];
        let out2 = assign_update(&points, &centroids, &mut a2);
        assert_eq!(a1, a2);
        assert_eq!(out1.counts, out2.counts);
        let bits =
            |s: &Vec<Vec<f64>>| -> Vec<u64> { s.iter().flatten().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&out1.sums), bits(&out2.sums));
        assert_eq!(out1.counts.iter().sum::<usize>(), 150);
    }
}
