//! Hierarchical agglomerative clustering via the nearest-neighbor chain
//! algorithm — O(n²) time, O(n²/2) memory — with Lance–Williams updates for
//! *single* and *Ward* linkage (the two the paper compares, §5.5.5).
//!
//! The pairwise matrix is built once and cached in **condensed
//! upper-triangular** form (n(n−1)/2 cells instead of n²), initialized with
//! the blocked kernels through the norm expansion
//! ‖x−y‖² = ‖x‖² − 2x·y + ‖y‖²: row norms are precomputed once, so the init
//! is one [`crate::simd::dot`] per pair instead of a subtract-square-sum
//! pass. All later merges touch the cached matrix only, via the
//! Lance–Williams recurrences — no distance is ever recomputed from points.
//!
//! The NN-chain merge order is not sorted by merge height, so cutting the
//! dendrogram at k clusters first re-sorts merges by height and replays the
//! `n − k` smallest through a union-find (exactly how scipy's
//! `fcluster(..., 'maxclust')` behaves for reducible linkages).

use crate::simd::{dot, PointMatrix};

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters — chains easily.
    Single,
    /// Ward's minimum-variance criterion.
    Ward,
}

/// Condensed upper-triangular pairwise matrix: cell `(i, j)` with `i < j`
/// lives at `i·n − i(i+1)/2 + (j − i − 1)`.
struct Condensed {
    data: Vec<f64>,
    n: usize,
}

impl Condensed {
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        if i < j {
            self.data[self.idx(i, j)]
        } else {
            self.data[self.idx(j, i)]
        }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let at = if i < j {
            self.idx(i, j)
        } else {
            self.idx(j, i)
        };
        self.data[at] = v;
    }
}

/// Build the condensed squared-distance matrix from `points` using
/// precomputed row norms and blocked dot products. Rounding can push a
/// tiny true distance negative; those clamp to 0.0 with a comparison (not
/// `f64::max`, which would swallow NaN — NaN distances must stay NaN so
/// they keep losing every `<` comparison, same as the direct formula).
fn condensed_from_points(points: &[Vec<f64>]) -> Condensed {
    let n = points.len();
    let m = PointMatrix::from_rows(points);
    let norms = m.row_norms();
    let mut data = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = norms[i] + norms[j] - 2.0 * dot(m.row(i), m.row(j));
            data.push(if d < 0.0 { 0.0 } else { d });
        }
    }
    Condensed { data, n }
}

/// Cluster `points` into `k` groups; returns member-index lists.
///
/// # Panics
/// Panics when `k == 0`.
pub fn hac(points: &[Vec<f64>], k: usize, linkage: Linkage) -> Vec<Vec<usize>> {
    let n = points.len();
    assert!(k > 0);
    if n <= k {
        return (0..n).map(|i| vec![i]).collect();
    }

    // Pairwise squared distances; Ward's recurrence operates on squared
    // Euclidean, single linkage is monotone in it.
    let mut dist = condensed_from_points(points);

    let mut active = vec![true; n];
    let mut size = vec![1.0f64; n];
    let mut merges: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            let start = active.iter().position(|&a| a).expect("remaining > 1");
            chain.push(start);
        }
        loop {
            let a = *chain.last().expect("chain non-empty");
            // Nearest active neighbor of a, preferring the chain predecessor
            // on ties (required for NN-chain correctness).
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for (j, &alive) in active.iter().enumerate() {
                if j == a || !alive {
                    continue;
                }
                let d = dist.get(a, j);
                if d < best_d || (d == best_d && Some(j) == prev) {
                    best_d = d;
                    best = j;
                }
            }
            if Some(best) == prev {
                // Reciprocal nearest neighbors: merge.
                let b = best;
                chain.pop();
                chain.pop();
                merges.push((a, b, best_d));
                // Lance–Williams update into slot `a`; deactivate `b`.
                let (sa, sb) = (size[a], size[b]);
                for j in 0..n {
                    if j == a || j == b || !active[j] {
                        continue;
                    }
                    let daj = dist.get(a, j);
                    let dbj = dist.get(b, j);
                    let new = match linkage {
                        Linkage::Single => daj.min(dbj),
                        Linkage::Ward => {
                            let sj = size[j];
                            ((sa + sj) * daj + (sb + sj) * dbj - sj * best_d) / (sa + sb + sj)
                        }
                    };
                    dist.set(a, j, new);
                }
                active[b] = false;
                size[a] += size[b];
                remaining -= 1;
                break;
            }
            chain.push(best);
        }
    }

    // Cut: replay the n−k smallest merges through a union-find.
    merges.sort_by(|x, y| x.2.total_cmp(&y.2));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b, _) in merges.iter().take(n - k) {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[rb] = ra;
        }
    }
    let mut byroot: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        byroot.entry(r).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = byroot.into_values().collect();
    clusters.sort_by_key(|c| c[0]);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn blobs(counts: &[usize], gap: f64) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (b, &c) in counts.iter().enumerate() {
            for i in 0..c {
                pts.push(vec![b as f64 * gap + i as f64 * 0.01, b as f64 * gap]);
            }
        }
        pts
    }

    #[test]
    fn ward_separates_blobs() {
        let pts = blobs(&[8, 8, 8], 100.0);
        let clusters = hac(&pts, 3, Linkage::Ward);
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            assert_eq!(c.len(), 8);
        }
    }

    #[test]
    fn single_linkage_follows_chains() {
        // A tight chain of points plus one distant outlier: single linkage
        // keeps the chain together at k=2.
        let mut pts: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i) * 1.0]).collect();
        pts.push(vec![1000.0]);
        let clusters = hac(&pts, 2, Linkage::Single);
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert!(sizes.contains(&12) && sizes.contains(&1), "{sizes:?}");
    }

    #[test]
    fn ward_prefers_balanced_merges_over_chains() {
        // Two blobs of 6 plus a chain bridging them: ward should still cut
        // into coherent halves rather than peeling one point off.
        let pts = blobs(&[6, 6], 10.0);
        let clusters = hac(&pts, 2, Linkage::Ward);
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![6, 6]);
    }

    #[test]
    fn k_equals_n_is_singletons() {
        let pts = blobs(&[4], 1.0);
        let clusters = hac(&pts, 4, Linkage::Ward);
        assert_eq!(clusters.len(), 4);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn duplicate_points_merge_first() {
        // Identical rows must land at distance exactly 0.0 under the norm
        // expansion (‖x‖² + ‖x‖² − 2·dot(x,x) with the same kernel for both
        // terms), so duplicates still merge before anything else.
        let mut pts = vec![vec![5.0]; 6];
        pts.push(vec![100.0]);
        pts.push(vec![101.0]);
        let clusters = hac(&pts, 2, Linkage::Single);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = clusters.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 6]);
    }

    #[test]
    fn condensed_indexing_round_trips() {
        let n = 7;
        let mut c = Condensed {
            data: vec![0.0; n * (n - 1) / 2],
            n,
        };
        let mut v = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                c.set(i, j, v);
                v += 1.0;
            }
        }
        let mut expect = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(c.get(i, j), expect);
                assert_eq!(c.get(j, i), expect, "symmetric access");
                expect += 1.0;
            }
        }
    }

    proptest! {
        #[test]
        fn partitions_every_point(n in 3usize..40, k in 1usize..6, ward in any::<bool>()) {
            let k = k.min(n);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64 * 17.0) % 29.0, (i as f64 * 5.0) % 11.0])
                .collect();
            let linkage = if ward { Linkage::Ward } else { Linkage::Single };
            let clusters = hac(&pts, k, linkage);
            prop_assert_eq!(clusters.len(), k);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }
}
