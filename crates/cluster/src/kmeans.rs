//! Lloyd's k-means with k-means++ seeding.

use rand::rngs::StdRng;
use rand::Rng;

use crate::dist_sq;

/// Cluster `points` into `k` groups; returns member-index lists (non-empty
/// clusters only — k-means++ on distinct points rarely loses one, but ties
/// can).
///
/// # Panics
/// Panics when `k == 0` or there are fewer points than `k` (the [`crate::cluster`]
/// wrapper handles those cases).
pub fn kmeans(points: &[Vec<f64>], k: usize, rng: &mut StdRng, max_iter: usize) -> Vec<Vec<usize>> {
    assert!(k > 0 && points.len() >= k);
    let mut centers = kmeans_pp_init(points, k, rng);
    let mut assignment = vec![0usize; points.len()];

    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist_sq(p, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }

        // Update.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // current center — the standard fix to keep k clusters alive.
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        dist_sq(&points[a], &centers[assignment[a]])
                            .total_cmp(&dist_sq(&points[b], &centers[assignment[b]]))
                    })
                    .expect("non-empty points");
                centers[c] = points[far].clone();
                changed = true;
            } else {
                for (ctr, s) in centers[c].iter_mut().zip(&sums[c]) {
                    *ctr = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut clusters = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

/// k-means++ seeding: each new center is drawn with probability proportional
/// to its squared distance from the nearest existing center.
fn kmeans_pp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist_sq(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0usize;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centers.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = dist_sq(p, centers.last().expect("non-empty"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn separates_three_obvious_blobs() {
        let mut pts = Vec::new();
        for i in 0..15 {
            let j = f64::from(i % 5) * 0.1;
            pts.push(vec![f64::from(i / 5) * 100.0 + j]);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let clusters = kmeans(&pts, 3, &mut rng, 50);
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            assert_eq!(c.len(), 5);
            let blob: std::collections::HashSet<usize> = c.iter().map(|&i| i / 5).collect();
            assert_eq!(blob.len(), 1);
        }
    }

    #[test]
    fn identical_points_still_produce_k_or_fewer() {
        let pts = vec![vec![1.0, 1.0]; 12];
        let mut rng = StdRng::seed_from_u64(0);
        let clusters = kmeans(&pts, 3, &mut rng, 10);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
        assert!(clusters.len() <= 3);
    }

    proptest! {
        #[test]
        fn partitions_every_point(n in 5usize..60, k in 1usize..5, seed in 0u64..20) {
            let k = k.min(n);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![f64::from(i as u32), f64::from((i * 7 % 13) as u32)])
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let clusters = kmeans(&pts, k, &mut rng, 20);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            prop_assert!(clusters.len() <= k);
        }
    }
}
