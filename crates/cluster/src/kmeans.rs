//! Lloyd's k-means with k-means++ seeding, on the blocked kernels of
//! [`crate::simd`], plus the mini-batch variant and warm-started refits the
//! retrain path uses.
//!
//! Three entry points:
//!
//! * [`kmeans`] / [`kmeans_fit`] — exact Lloyd. The inner loop is the fused
//!   assign-then-update step ([`simd::assign_update`]): every row is
//!   touched exactly once per sweep. Bit-identical to
//!   [`crate::oracle::kmeans_fit`] by construction (same distance
//!   definition, same accumulation order, same RNG draw sequence); set
//!   `PS3_STRICT_KERNELS=1` to assert that equality on every call.
//! * [`kmeans_minibatch`] / [`kmeans_minibatch_fit`] — Sculley-style
//!   mini-batch k-means with a deterministic batch schedule derived from
//!   the caller's RNG (one shuffle, then wrapping fixed-size batches), so
//!   results are reproducible per seed. The interior uses the centroid-norm
//!   expansion ‖x−c‖² = ‖x‖² − 2x·c + ‖c‖² (rank-preserving, so the argmin
//!   is exact); no oracle contract binds here, only per-seed determinism.
//! * [`kmeans_warm`] — Lloyd warm-started from caller-provided centroids
//!   (the previous generation's, in the retrain path). On unchanged data a
//!   converged warm start reproduces the previous assignment and centroids
//!   bit-identically in one assign sweep.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::simd::{self, dist_sq, PointMatrix};

/// Default mini-batch size.
pub const MINIBATCH_SIZE: usize = 256;

/// Epochs (passes over the shuffled schedule) a mini-batch run makes
/// before the final full assignment sweep.
pub const MINIBATCH_EPOCHS: usize = 3;

/// A fitted k-means model: the full output the retrain path needs
/// (clusters alone lose the centroids a warm start resumes from).
#[derive(Debug, Clone)]
pub struct KmeansFit {
    /// Final centroids, one row per cluster (empty clusters keep their
    /// reseeded position).
    pub centroids: Vec<Vec<f64>>,
    /// `assignment[i]` = centroid index of point `i`.
    pub assignment: Vec<usize>,
    /// Assign-update sweeps executed (mini-batch: batches processed).
    pub sweeps: usize,
    /// Whether the run converged before its sweep cap.
    pub converged: bool,
}

impl KmeansFit {
    /// Member-index lists per cluster, non-empty clusters only, in
    /// centroid-index order.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let k = self.centroids.len();
        let mut clusters = vec![Vec::new(); k];
        for (i, &c) in self.assignment.iter().enumerate() {
            clusters[c].push(i);
        }
        clusters.retain(|c| !c.is_empty());
        clusters
    }
}

/// Cluster `points` into `k` groups; returns member-index lists (non-empty
/// clusters only — k-means++ on distinct points rarely loses one, but ties
/// can).
///
/// # Panics
/// Panics when `k == 0` or there are fewer points than `k` (the
/// [`crate::cluster`] wrapper handles those cases).
pub fn kmeans(points: &[Vec<f64>], k: usize, rng: &mut StdRng, max_iter: usize) -> Vec<Vec<usize>> {
    kmeans_fit(points, k, rng, max_iter).clusters()
}

/// [`kmeans`] returning the full [`KmeansFit`] (centroids included).
///
/// Under `PS3_STRICT_KERNELS=1` every call re-runs the scalar oracle on a
/// cloned RNG and asserts the blocked result is bit-identical.
///
/// # Panics
/// As [`kmeans`]; additionally (strict mode only) if the blocked kernel
/// ever diverges from the oracle.
pub fn kmeans_fit(points: &[Vec<f64>], k: usize, rng: &mut StdRng, max_iter: usize) -> KmeansFit {
    assert!(k > 0 && points.len() >= k);
    let strict_rng = crate::strict_kernels().then(|| rng.clone());
    let m = PointMatrix::from_rows(points);
    let centroids = kmeans_pp_init(&m, k, rng);
    let fit = lloyd(&m, centroids, max_iter);
    if let Some(mut oracle_rng) = strict_rng {
        let reference = crate::oracle::kmeans_fit(points, k, &mut oracle_rng, max_iter);
        assert_eq!(
            fit.assignment, reference.assignment,
            "strict kernels: blocked assignment diverged from the oracle"
        );
        let bits = |c: &[Vec<f64>]| -> Vec<Vec<u64>> {
            c.iter()
                .map(|row| row.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        assert_eq!(
            bits(&fit.centroids),
            bits(&reference.centroids),
            "strict kernels: blocked centroids diverged from the oracle"
        );
    }
    fit
}

/// Lloyd warm-started from `init` centroids (typically the previous
/// generation's): assign, update, repeat until stable or `max_iter`. No RNG
/// is involved — the only stochastic part of exact k-means is seeding, and
/// a warm start replaces it.
///
/// # Panics
/// Panics when `init` is empty, `points` is empty, or dimensions disagree.
pub fn kmeans_warm(points: &[Vec<f64>], init: &[Vec<f64>], max_iter: usize) -> KmeansFit {
    assert!(!init.is_empty() && !points.is_empty());
    assert_eq!(
        points[0].len(),
        init[0].len(),
        "warm-start centroid dimension mismatch"
    );
    let m = PointMatrix::from_rows(points);
    lloyd(&m, PointMatrix::from_rows(init), max_iter)
}

/// The shared Lloyd loop: fused assign+update sweeps with the deterministic
/// empty-cluster reseed rule. The spec (mirrored by the oracle):
///
/// 1. One [`simd::assign_update`] pass — assignment and per-cluster sums in
///    blocked ascending order.
/// 2. Non-empty centroids finalize to `sum / count`, ascending cluster.
/// 3. Empty clusters, ascending, reseed at the point with the strictly
///    largest distance to its (new) assigned centroid — first maximum
///    wins; NaN distances never win.
/// 4. Stop when nothing changed (no assignment moved, no reseed fired).
fn lloyd(points: &PointMatrix, mut centroids: PointMatrix, max_iter: usize) -> KmeansFit {
    let n = points.n();
    let k = centroids.n();
    let mut assignment = vec![0usize; n];
    let mut sweeps = 0usize;
    let mut converged = false;
    for _ in 0..max_iter {
        sweeps += 1;
        let step = simd::assign_update(points, &centroids, &mut assignment);
        let mut changed = step.changed;
        for c in 0..k {
            if step.counts[c] > 0 {
                let inv = step.counts[c] as f64;
                for (ctr, s) in centroids.row_mut(c).iter_mut().zip(&step.sums[c]) {
                    *ctr = s / inv;
                }
            }
        }
        for c in 0..k {
            if step.counts[c] == 0 {
                let mut far = 0usize;
                let mut far_d = f64::NEG_INFINITY;
                for (i, &home) in assignment.iter().enumerate() {
                    let d = dist_sq(points.row(i), centroids.row(home));
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                let row = points.row(far).to_vec();
                centroids.row_mut(c).copy_from_slice(&row);
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    KmeansFit {
        centroids: centroids.to_rows(),
        assignment,
        sweeps,
        converged,
    }
}

/// Mini-batch k-means (Sculley, WWW'10): member-index lists, like
/// [`kmeans`]. `batch_size` 0 means [`MINIBATCH_SIZE`].
pub fn kmeans_minibatch(
    points: &[Vec<f64>],
    k: usize,
    rng: &mut StdRng,
    batch_size: usize,
) -> Vec<Vec<usize>> {
    kmeans_minibatch_fit(points, k, rng, batch_size).clusters()
}

/// Mini-batch k-means returning the full fit. Deterministic per RNG state:
/// the batch schedule is one `rng`-driven shuffle of the point indices,
/// consumed in wrapping `batch_size` windows for [`MINIBATCH_EPOCHS`]
/// passes; centers move by the per-center learning rate `1 / count`. A
/// final full assignment sweep produces the returned assignment.
///
/// # Panics
/// Panics when `k == 0` or there are fewer points than `k`.
pub fn kmeans_minibatch_fit(
    points: &[Vec<f64>],
    k: usize,
    rng: &mut StdRng,
    batch_size: usize,
) -> KmeansFit {
    assert!(k > 0 && points.len() >= k);
    let m = PointMatrix::from_rows(points);
    let n = m.n();
    let batch = if batch_size == 0 {
        MINIBATCH_SIZE
    } else {
        batch_size
    }
    .min(n);
    let mut centroids = kmeans_pp_init(&m, k, rng);

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut counts = vec![0u64; k];
    let batches = (MINIBATCH_EPOCHS * n).div_ceil(batch);
    let mut cursor = 0usize;
    for _ in 0..batches {
        // Centroid norms are recomputed per batch (centers moved); rows
        // score as ‖c‖² − 2x·c, which orders identically to ‖x−c‖².
        let cnorms = centroids.row_norms();
        for _ in 0..batch {
            let i = order[cursor];
            cursor += 1;
            if cursor == n {
                cursor = 0;
            }
            let row = m.row(i);
            let mut best = 0usize;
            let mut best_s = f64::INFINITY;
            for (c, &cn) in cnorms.iter().enumerate() {
                let s = cn - 2.0 * simd::dot(row, centroids.row(c));
                if s < best_s {
                    best_s = s;
                    best = c;
                }
            }
            counts[best] += 1;
            let eta = 1.0 / counts[best] as f64;
            for (ctr, &x) in centroids.row_mut(best).iter_mut().zip(row) {
                *ctr += eta * (x - *ctr);
            }
        }
    }

    let mut assignment = vec![0usize; n];
    simd::assign_update(&m, &centroids, &mut assignment);
    KmeansFit {
        centroids: centroids.to_rows(),
        assignment,
        sweeps: batches,
        converged: true,
    }
}

/// k-means++ seeding: each new center is drawn with probability
/// proportional to its squared distance from the nearest existing center.
/// The RNG draw sequence (one `gen_range(0..n)`, then one
/// `gen_range(0.0..total)` per additional center) and the sequential
/// `d2.iter().sum()` total are part of the kernel/oracle spec.
fn kmeans_pp_init(points: &PointMatrix, k: usize, rng: &mut StdRng) -> PointMatrix {
    let n = points.n();
    let dim = points.dim();
    let mut data: Vec<f64> = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    data.extend_from_slice(points.row(first));
    let mut chosen = 1usize;
    let mut d2: Vec<f64> = (0..n)
        .map(|i| dist_sq(points.row(i), &data[..dim]))
        .collect();
    while chosen < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0usize;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        data.extend_from_slice(points.row(next));
        chosen += 1;
        let newest = &data[(chosen - 1) * dim..chosen * dim];
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = dist_sq(points.row(i), newest);
            if d < *slot {
                *slot = d;
            }
        }
    }
    PointMatrix::from_flat(data, k, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn separates_three_obvious_blobs() {
        let mut pts = Vec::new();
        for i in 0..15 {
            let j = f64::from(i % 5) * 0.1;
            pts.push(vec![f64::from(i / 5) * 100.0 + j]);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let clusters = kmeans(&pts, 3, &mut rng, 50);
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            assert_eq!(c.len(), 5);
            let blob: std::collections::HashSet<usize> = c.iter().map(|&i| i / 5).collect();
            assert_eq!(blob.len(), 1);
        }
    }

    #[test]
    fn identical_points_still_produce_k_or_fewer() {
        let pts = vec![vec![1.0, 1.0]; 12];
        let mut rng = StdRng::seed_from_u64(0);
        let clusters = kmeans(&pts, 3, &mut rng, 10);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
        assert!(clusters.len() <= 3);
    }

    #[test]
    fn fit_reports_convergence_and_centroids() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 100.0 } + f64::from(i % 10) * 0.01])
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let fit = kmeans_fit(&pts, 2, &mut rng, 50);
        assert!(fit.converged);
        assert!(fit.sweeps <= 50);
        assert_eq!(fit.centroids.len(), 2);
        assert_eq!(fit.assignment.len(), 20);
        assert_eq!(fit.clusters().len(), 2);
    }

    #[test]
    fn warm_start_on_converged_centroids_is_a_fixed_point() {
        let pts: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![f64::from(i / 8) * 50.0 + f64::from(i % 8) * 0.1, 1.0])
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let cold = kmeans_fit(&pts, 3, &mut rng, 100);
        assert!(cold.converged);
        let warm = kmeans_warm(&pts, &cold.centroids, 100);
        assert_eq!(warm.assignment, cold.assignment);
        let bits =
            |c: &[Vec<f64>]| -> Vec<u64> { c.iter().flatten().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&warm.centroids), bits(&cold.centroids));
        assert!(
            warm.sweeps <= 2,
            "a converged warm start must settle in ≤2 sweeps, took {}",
            warm.sweeps
        );
    }

    #[test]
    fn minibatch_is_deterministic_per_seed_and_partitions_points() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    f64::from(i % 3) * 100.0 + f64::from(i % 7) * 0.1,
                    f64::from(i % 5),
                ]
            })
            .collect();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans_minibatch(&pts, 3, &mut rng, 32)
        };
        assert_eq!(run(11), run(11), "same seed, same clusters");
        let clusters = run(11);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
        assert!(clusters.len() <= 3);
    }

    #[test]
    fn minibatch_finds_separated_blobs() {
        let pts: Vec<Vec<f64>> = (0..90)
            .map(|i| vec![f64::from(i / 30) * 1000.0 + f64::from(i % 30) * 0.01])
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let clusters = kmeans_minibatch(&pts, 3, &mut rng, 16);
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            let blob: std::collections::HashSet<usize> = c.iter().map(|&i| i / 30).collect();
            assert_eq!(blob.len(), 1, "mini-batch mixed the blobs");
        }
    }

    proptest! {
        #[test]
        fn partitions_every_point(n in 5usize..60, k in 1usize..5, seed in 0u64..20) {
            let k = k.min(n);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![f64::from(i as u32), f64::from((i * 7 % 13) as u32)])
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let clusters = kmeans(&pts, k, &mut rng, 20);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            prop_assert!(clusters.len() <= k);
        }
    }
}
