//! Kernel-vs-oracle bit-identity, from outside the crate.
//!
//! The blocked kernels in `ps3_cluster::simd` promise *bit-identical*
//! results to the straight-line scalar oracles in `ps3_cluster::oracle` —
//! not approximately equal, equal to the last ulp, because partition
//! clustering feeds exemplar choices and any drift changes which rows a
//! query reads. These property tests exercise the contract on adversarial
//! float inputs (NaN, signed zeros, magnitude cliffs) and on inputs that
//! force the empty-cluster reseed path, where the tie-breaking spec does
//! the heavy lifting. `PS3_STRICT_KERNELS=1` additionally re-checks the
//! same contract inside every `kmeans_fit` call; CI runs this file both
//! ways.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ps3_cluster::{kmeans_fit, kmeans_minibatch, oracle, simd};

/// Interesting doubles: ordinary values (repeated arms skew the draw
/// toward them), denormal-scale, huge-scale, signed zeros, and NaN.
/// Infinities are excluded — a distance through ±∞ is ∞ either way, but
/// ∞ − ∞ = NaN makes every draw collapse to the NaN case and hides the
/// finite-value coverage.
fn weird_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e3..1e3f64,
        -1e3..1e3f64,
        -1e3..1e3f64,
        -1e3..1e3f64,
        Just(0.0),
        Just(-0.0),
        Just(1e-300),
        Just(-1e-300),
        Just(1e300),
        Just(-1e300),
        Just(f64::NAN),
    ]
}

fn weird_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(weird_f64(), len)
}

fn bits(v: &[Vec<f64>]) -> Vec<u64> {
    v.iter().flatten().map(|x| x.to_bits()).collect()
}

proptest! {
    /// The blocked distance kernel equals the scalar oracle bit-for-bit on
    /// every length (full 8-lane blocks, partial tails, and the
    /// shorter-than-one-block case) and on every weird float.
    #[test]
    fn dist_sq_matches_oracle_bitwise(len in 0usize..40, seed in any::<u64>()) {
        let mut runner = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let gen = |rng: &mut StdRng| -> Vec<f64> {
            (0..len)
                .map(|_| match rng.gen_range(0..10) {
                    0 => f64::NAN,
                    1 => -0.0,
                    2 => 1e300,
                    3 => 1e-300,
                    _ => rng.gen_range(-1e3..1e3),
                })
                .collect()
        };
        let a = gen(&mut runner);
        let b = gen(&mut runner);
        let fast = simd::dist_sq(&a, &b);
        let slow = oracle::dist_sq(&a, &b);
        prop_assert_eq!(
            fast.to_bits(),
            slow.to_bits(),
            "kernel {} vs oracle {} on len {}",
            fast,
            slow,
            len
        );
    }

    /// Same contract driven directly by strategy-built vectors, hitting
    /// the special values more densely than the RNG loop above.
    #[test]
    fn dist_sq_matches_oracle_on_adversarial_pairs(
        ab in (0usize..24).prop_flat_map(|len| (weird_vec(len), weird_vec(len)))
    ) {
        let (a, b) = ab;
        prop_assert_eq!(
            simd::dist_sq(&a, &b).to_bits(),
            oracle::dist_sq(&a, &b).to_bits()
        );
    }

    /// Full k-means runs agree with the oracle end to end: same RNG draws,
    /// same assignment, bit-identical centroids — including runs where
    /// duplicated points force clusters empty and the reseed rule decides.
    #[test]
    fn kmeans_fit_matches_oracle_bitwise(
        n in 4usize..40,
        k in 1usize..6,
        dim in 1usize..12,
        dup in 0usize..3,
        seed in 0u64..50,
    ) {
        let k = k.min(n);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                // dup > 0 collapses points onto few distinct values, which
                // reliably empties clusters mid-run.
                let v = if dup > 0 { (i % dup.max(1)) as u32 } else { i as u32 };
                (0..dim)
                    .map(|d| f64::from(v) * 10.0 + f64::from((d * 7 % 5) as u32) * 0.25)
                    .collect()
            })
            .collect();
        let fast = kmeans_fit(&pts, k, &mut StdRng::seed_from_u64(seed), 25);
        let slow = oracle::kmeans_fit(&pts, k, &mut StdRng::seed_from_u64(seed), 25);
        prop_assert_eq!(&fast.assignment, &slow.assignment);
        prop_assert_eq!(bits(&fast.centroids), bits(&slow.centroids));
        prop_assert_eq!(fast.sweeps, slow.sweeps);
        prop_assert_eq!(fast.converged, slow.converged);
    }

    /// Mini-batch k-means is a pure function of `(points, k, seed, batch)`:
    /// re-running with the same seed reproduces the clustering exactly, and
    /// every point lands in exactly one cluster.
    #[test]
    fn minibatch_is_deterministic_per_seed(
        n in 8usize..120,
        k in 1usize..5,
        batch in 4usize..40,
        seed in 0u64..30,
    ) {
        let k = k.min(n);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![f64::from((i * 13 % 97) as u32), f64::from((i % 11) as u32) * 3.0])
            .collect();
        let run = || kmeans_minibatch(&pts, k, &mut StdRng::seed_from_u64(seed), batch);
        let first = run();
        prop_assert_eq!(&first, &run());
        let mut all: Vec<usize> = first.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}

/// Pinned regression cases the strategies above could in principle rotate
/// away from: NaN lanes in every block position, and ±0.0 (whose distance
/// must be +0.0, not −0.0, for `to_bits` equality downstream).
#[test]
fn pinned_nan_and_signed_zero_cases() {
    for len in [1usize, 7, 8, 9, 15, 16, 17, 31] {
        for nan_at in 0..len {
            let mut a = vec![1.5; len];
            a[nan_at] = f64::NAN;
            let b = vec![-0.5; len];
            assert_eq!(
                simd::dist_sq(&a, &b).to_bits(),
                oracle::dist_sq(&a, &b).to_bits(),
                "NaN at {nan_at} of {len}"
            );
        }
        let z = vec![0.0; len];
        let nz = vec![-0.0; len];
        assert_eq!(
            simd::dist_sq(&z, &nz).to_bits(),
            oracle::dist_sq(&z, &nz).to_bits()
        );
    }
}

/// Twelve identical points under k=3 guarantee empty clusters every sweep;
/// the ascending-reseed tie-break must agree between kernel and oracle.
#[test]
fn all_duplicate_points_agree_with_oracle() {
    let pts = vec![vec![2.0, -3.0, 0.5]; 12];
    for seed in 0..8 {
        let fast = kmeans_fit(&pts, 3, &mut StdRng::seed_from_u64(seed), 10);
        let slow = oracle::kmeans_fit(&pts, 3, &mut StdRng::seed_from_u64(seed), 10);
        assert_eq!(fast.assignment, slow.assignment, "seed {seed}");
        assert_eq!(bits(&fast.centroids), bits(&slow.centroids), "seed {seed}");
    }
}
