//! A blocking client for the PS3 wire protocol — what tests, examples,
//! and simple integrations speak to a [`NetServer`](crate::server) with.
//!
//! [`NetClient`] owns one TCP connection. The synchronous path is
//! [`NetClient::request`]: encode, send, block for the matching reply.
//! Pipelining is the split pair [`NetClient::send`] (fire off any number
//! of requests) and [`NetClient::recv`] (collect replies in completion
//! order, correlated by request id).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ps3_core::QueryRequest;
use ps3_query::QueryAnswer;

use crate::proto::{
    encode_frame, ErrorFrame, Frame, FrameBuffer, ProtoError, RequestFrame, ResponseFrame,
    DEFAULT_MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (including a server that closed the connection).
    Io(io::Error),
    /// The server sent bytes this client could not decode.
    Proto(ProtoError),
    /// The server answered with a typed refusal.
    Server(ErrorFrame),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => {
                write!(
                    f,
                    "server refused request {}: {:?}: {}",
                    e.request_id, e.code, e.message
                )
            }
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl std::error::Error for ClientError {}

/// A served answer, as seen from the client side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAnswer {
    /// The correlation id this answer belongs to.
    pub request_id: u64,
    /// The (approximate) answer rows.
    pub answer: QueryAnswer,
    /// How many partitions the server read.
    pub partitions_read: u32,
    /// Server-side picker latency in milliseconds.
    pub picker_ms: f64,
}

impl RemoteAnswer {
    fn from_frame(frame: ResponseFrame) -> RemoteAnswer {
        RemoteAnswer {
            request_id: frame.request_id,
            answer: frame.to_answer(),
            partitions_read: frame.partitions_read,
            picker_ms: frame.picker_ms,
        }
    }
}

/// One frame from the server: an answer or a typed refusal, either way
/// carrying the correlation id it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// A successful answer.
    Answer(RemoteAnswer),
    /// A typed refusal.
    Error(ErrorFrame),
}

impl ServerReply {
    /// The correlation id this reply answers.
    pub fn request_id(&self) -> u64 {
        match self {
            ServerReply::Answer(a) => a.request_id,
            ServerReply::Error(e) => e.request_id,
        }
    }
}

/// A blocking connection to a PS3 network front door.
pub struct NetClient {
    stream: TcpStream,
    inbound: FrameBuffer,
    next_id: u64,
    /// Replies that arrived while waiting for a different id (pipelined
    /// requests complete in any order).
    parked: HashMap<u64, ServerReply>,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            inbound: FrameBuffer::new(DEFAULT_MAX_FRAME),
            next_id: 1,
            parked: HashMap::new(),
        })
    }

    /// Send one request without waiting; returns its correlation id.
    /// Collect the reply later with [`NetClient::recv`] /
    /// [`NetClient::recv_for`].
    pub fn send(&mut self, req: &QueryRequest) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let frame = Frame::Request(RequestFrame::from_request(request_id, req)?);
        self.stream.write_all(&encode_frame(&frame)?)?;
        Ok(request_id)
    }

    /// Block for the next reply, in server completion order.
    pub fn recv(&mut self) -> Result<ServerReply, ClientError> {
        if let Some(&id) = self.parked.keys().next() {
            return Ok(self.parked.remove(&id).expect("keyed reply"));
        }
        self.read_reply()
    }

    /// Block for the reply to `request_id` specifically, parking any other
    /// replies that arrive first. A **connection-level** error frame
    /// (request id 0 — an undecodable frame, an unsupported version, an
    /// over-cap length; the server closes after sending one) is returned
    /// immediately whatever id was asked for: no reply with the requested
    /// id can ever arrive after it, so parking it would turn the server's
    /// typed refusal into an opaque EOF.
    pub fn recv_for(&mut self, request_id: u64) -> Result<ServerReply, ClientError> {
        loop {
            if let Some(reply) = self.parked.remove(&request_id) {
                return Ok(reply);
            }
            let reply = self.read_reply()?;
            let is_conn_level = matches!(&reply, ServerReply::Error(e) if e.request_id == 0);
            if reply.request_id() == request_id || is_conn_level {
                return Ok(reply);
            }
            self.parked.insert(reply.request_id(), reply);
        }
    }

    /// The synchronous convenience path: send, block for the matching
    /// reply, and surface server refusals as [`ClientError::Server`].
    pub fn request(&mut self, req: &QueryRequest) -> Result<RemoteAnswer, ClientError> {
        let id = self.send(req)?;
        match self.recv_for(id)? {
            ServerReply::Answer(answer) => Ok(answer),
            ServerReply::Error(err) => Err(ClientError::Server(err)),
        }
    }

    /// Read frames off the socket until one complete reply decodes.
    fn read_reply(&mut self) -> Result<ServerReply, ClientError> {
        loop {
            if let Some(frame) = self.inbound.next_frame()? {
                return match frame {
                    Frame::Response(resp) => {
                        Ok(ServerReply::Answer(RemoteAnswer::from_frame(resp)))
                    }
                    Frame::Error(err) => Ok(ServerReply::Error(err)),
                    Frame::Request(_) => Err(ClientError::Proto(ProtoError::Invalid(
                        "server sent a request frame",
                    ))),
                };
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.inbound.push(&chunk[..n]);
        }
    }
}
