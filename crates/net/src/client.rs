//! A blocking client for the PS3 wire protocol — what tests, examples,
//! and simple integrations speak to a [`NetServer`](crate::server) with.
//!
//! [`NetClient`] owns one TCP connection. The synchronous path is
//! [`NetClient::request`]: encode, send, block for the matching reply.
//! Pipelining is the split pair [`NetClient::send`] (fire off any number
//! of requests) and [`NetClient::recv`] (collect replies in completion
//! order, correlated by request id). [`NetClient::request_streaming`]
//! flips the request's progressive flag and returns the refining
//! [`RemotePartial`]s alongside the final answer.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ps3_core::{AnswerMeta, QueryRequest};
use ps3_query::QueryAnswer;

use crate::proto::{
    encode_frame_at_into, ErrorFrame, Frame, FrameBuffer, PartialFrame, ProtoError, RequestFrame,
    ResponseFrame, DEFAULT_MAX_FRAME, PROTO_VERSION,
};

/// Queued-but-unsent request bytes above this threshold force a flush on
/// the next [`NetClient::send`], bounding how much a fire-and-forget
/// burst can buffer client-side (64 KiB ≈ hundreds of typical requests).
const OUTGOING_FLUSH_THRESHOLD: usize = 64 * 1024;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (including a server that closed the connection).
    Io(io::Error),
    /// The server sent bytes this client could not decode.
    Proto(ProtoError),
    /// The server answered with a typed refusal.
    Server(ErrorFrame),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => {
                write!(
                    f,
                    "server refused request {}: {:?}: {}",
                    e.request_id, e.code, e.message
                )
            }
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl std::error::Error for ClientError {}

/// A served answer, as seen from the client side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAnswer {
    /// The correlation id this answer belongs to.
    pub request_id: u64,
    /// The (approximate) answer rows.
    pub answer: QueryAnswer,
    /// How the answer was produced: partitions read, picker latency, the
    /// planned fraction, exactness, and per-aggregate error estimates —
    /// the same [`AnswerMeta`] the router reports locally. Answers from a
    /// v1 server carry the explicit "no signal" meta.
    pub meta: AnswerMeta,
    /// The merged answer sketch behind a sketch-class answer (v3) —
    /// `None` for scalar answers.
    pub sketch: Option<ps3_sketch::AnswerSketch>,
}

impl RemoteAnswer {
    fn from_frame(frame: ResponseFrame) -> RemoteAnswer {
        RemoteAnswer {
            request_id: frame.request_id,
            answer: frame.to_answer(),
            meta: frame.to_meta(),
            sketch: frame.sketch,
        }
    }
}

/// One refining intermediate answer from a progressive request.
#[derive(Debug, Clone, PartialEq)]
pub struct RemotePartial {
    /// 0-based position in the stream.
    pub seq: u32,
    /// Partitions combined so far.
    pub partitions_done: u32,
    /// Partitions the final answer will combine.
    pub partitions_total: u32,
    /// The intermediate estimate.
    pub answer: QueryAnswer,
    /// Summary relative error of the estimate (NaN when unestimable).
    pub rel_err: f64,
}

impl RemotePartial {
    fn from_frame(frame: &PartialFrame) -> RemotePartial {
        RemotePartial {
            seq: frame.seq,
            partitions_done: frame.partitions_done,
            partitions_total: frame.partitions_total,
            answer: frame.to_answer(),
            rel_err: frame.rel_err,
        }
    }
}

/// Everything a progressive request produced: zero or more refinements
/// (in `seq` order — cache hits answer in a single frame) and the final
/// answer, which is bit-identical to what a non-progressive request for
/// the same `(table, query, method, planned frac, seed)` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedAnswer {
    /// The refinements, in stream order.
    pub partials: Vec<RemotePartial>,
    /// The final answer.
    pub answer: RemoteAnswer,
}

/// One frame from the server: an answer or a typed refusal, either way
/// carrying the correlation id it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// A successful answer.
    Answer(RemoteAnswer),
    /// A typed refusal.
    Error(ErrorFrame),
}

impl ServerReply {
    /// The correlation id this reply answers.
    pub fn request_id(&self) -> u64 {
        match self {
            ServerReply::Answer(a) => a.request_id,
            ServerReply::Error(e) => e.request_id,
        }
    }
}

/// A blocking connection to a PS3 network front door.
///
/// Requests queue client-side: [`NetClient::send`] encodes into an
/// outgoing buffer without touching the socket, and the whole batch goes
/// out in **one** write on the first blocking receive (or past a size
/// threshold, or an explicit [`NetClient::flush`]). A pipelined burst of
/// N small requests therefore costs one syscall, not N — the serving
/// benches measure the protocol, not the client's syscall count.
pub struct NetClient {
    stream: TcpStream,
    inbound: FrameBuffer,
    /// Encoded request frames not yet written to the socket.
    outgoing: Vec<u8>,
    next_id: u64,
    /// Replies that arrived while waiting for a different id (pipelined
    /// requests complete in any order).
    parked: HashMap<u64, ServerReply>,
    /// Partial frames collected per request id, awaiting their final
    /// response.
    partials: HashMap<u64, Vec<RemotePartial>>,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            inbound: FrameBuffer::new(DEFAULT_MAX_FRAME),
            outgoing: Vec::new(),
            next_id: 1,
            parked: HashMap::new(),
            partials: HashMap::new(),
        })
    }

    /// Queue one request without waiting; returns its correlation id.
    /// The frame is encoded into the outgoing buffer and written together
    /// with every other queued request when the client next blocks for a
    /// reply ([`NetClient::recv`] / [`NetClient::recv_for`]), when the
    /// buffer crosses its size threshold, or on [`NetClient::flush`]. A
    /// frame that refuses to encode leaves the queue untouched.
    pub fn send(&mut self, req: &QueryRequest) -> Result<u64, ClientError> {
        if self.outgoing.len() >= OUTGOING_FLUSH_THRESHOLD {
            self.flush()?;
        }
        let request_id = self.next_id;
        let frame = Frame::Request(RequestFrame::from_request(request_id, req)?);
        encode_frame_at_into(&frame, PROTO_VERSION, &mut self.outgoing)?;
        self.next_id += 1;
        Ok(request_id)
    }

    /// Write every queued request to the socket in one batch. Called
    /// implicitly before any blocking receive; explicit calls only matter
    /// for fire-and-forget patterns that never read a reply.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if !self.outgoing.is_empty() {
            self.stream.write_all(&self.outgoing)?;
            self.outgoing.clear();
        }
        Ok(())
    }

    /// Block for the next reply, in server completion order.
    pub fn recv(&mut self) -> Result<ServerReply, ClientError> {
        if let Some(&id) = self.parked.keys().next() {
            return Ok(self.parked.remove(&id).expect("keyed reply"));
        }
        self.read_reply()
    }

    /// Block for the reply to `request_id` specifically, parking any other
    /// replies that arrive first. A **connection-level** error frame
    /// (request id 0 — an undecodable frame, an unsupported version, an
    /// over-cap length; the server closes after sending one) is returned
    /// immediately whatever id was asked for: no reply with the requested
    /// id can ever arrive after it, so parking it would turn the server's
    /// typed refusal into an opaque EOF.
    pub fn recv_for(&mut self, request_id: u64) -> Result<ServerReply, ClientError> {
        loop {
            if let Some(reply) = self.parked.remove(&request_id) {
                return Ok(reply);
            }
            let reply = self.read_reply()?;
            let is_conn_level = matches!(&reply, ServerReply::Error(e) if e.request_id == 0);
            if reply.request_id() == request_id || is_conn_level {
                return Ok(reply);
            }
            self.parked.insert(reply.request_id(), reply);
        }
    }

    /// The synchronous convenience path: send, block for the matching
    /// reply, and surface server refusals as [`ClientError::Server`].
    pub fn request(&mut self, req: &QueryRequest) -> Result<RemoteAnswer, ClientError> {
        let id = self.send(req)?;
        let reply = self.recv_for(id);
        // Whatever happened, this id is settled: drop any stashed partials
        // nobody will collect.
        self.partials.remove(&id);
        match reply? {
            ServerReply::Answer(answer) => Ok(answer),
            ServerReply::Error(err) => Err(ClientError::Server(err)),
        }
    }

    /// Send with the progressive flag set and collect the whole stream:
    /// every [`RemotePartial`] refinement plus the final answer. How many
    /// partials arrive is the server's choice — a cache hit answers in one
    /// frame with no partials at all.
    pub fn request_streaming(&mut self, req: &QueryRequest) -> Result<StreamedAnswer, ClientError> {
        let req = req.clone().progressive();
        let id = self.send(&req)?;
        let reply = self.recv_for(id);
        let partials = self.partials.remove(&id).unwrap_or_default();
        match reply? {
            ServerReply::Answer(answer) => Ok(StreamedAnswer { partials, answer }),
            ServerReply::Error(err) => Err(ClientError::Server(err)),
        }
    }

    /// Partial frames stashed for `request_id` so far (without waiting).
    /// [`NetClient::request_streaming`] is the usual way to consume
    /// partials; this is the escape hatch for pipelined [`NetClient::send`]
    /// users.
    pub fn take_partials(&mut self, request_id: u64) -> Vec<RemotePartial> {
        self.partials.remove(&request_id).unwrap_or_default()
    }

    /// Read frames off the socket until one complete reply decodes.
    /// Partial frames are not replies: they are stashed for their request
    /// id and reading continues. Queued requests are flushed before the
    /// first blocking read — the other half of the send-batching contract
    /// (waiting for a reply to a request the socket never saw would
    /// deadlock).
    fn read_reply(&mut self) -> Result<ServerReply, ClientError> {
        loop {
            if let Some(frame) = self.inbound.next_frame()? {
                match frame {
                    Frame::Response(resp) => {
                        return Ok(ServerReply::Answer(RemoteAnswer::from_frame(resp)))
                    }
                    Frame::Error(err) => return Ok(ServerReply::Error(err)),
                    Frame::Partial(part) => {
                        self.partials
                            .entry(part.request_id)
                            .or_default()
                            .push(RemotePartial::from_frame(&part));
                        continue;
                    }
                    Frame::Request(_) => {
                        return Err(ClientError::Proto(ProtoError::Invalid(
                            "server sent a request frame",
                        )))
                    }
                };
            }
            self.flush()?;
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.inbound.push(&chunk[..n]);
        }
    }
}

impl Drop for NetClient {
    /// Best-effort flush of queued requests a fire-and-forget caller never
    /// followed with a receive; errors are ignored (the connection is
    /// going away either way).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}
