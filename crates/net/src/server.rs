//! The sharded event-loop TCP server: N readiness-polled tasks feeding
//! the [`Router`].
//!
//! The front door runs as [`ServerConfig::net_shards`] independent event
//! loops (detached [`ThreadPool`] tasks, so `ps3_runtime` remains the only
//! thread-owning crate), each owning a **disjoint** set of connections
//! multiplexed with [`ps3_runtime::poll::poll_fds`]. Shard 0 additionally
//! owns the non-blocking listener and deals accepted sockets round-robin:
//! a connection destined for another shard is handed off through that
//! shard's [`Mailbox`] and self-pipe [`Waker`] — the only cross-shard
//! traffic. After the handoff, a connection's whole life (reads, decodes,
//! submissions, completions, writes) happens on one shard with no
//! cross-shard locking on the hot path.
//!
//! Within a shard, every wakeup works at batch granularity:
//!
//! 1. **Read** — each readable connection is drained with a single
//!    scatter-read ([`ps3_runtime::poll::readv_fd`]) into the shard's
//!    reusable scratch buffers, and *every* complete [`RequestFrame`] is
//!    decoded before the router is touched. Requests submit through that
//!    connection's own [`Tenant`] handle with `try_submit`, so the
//!    router's backpressure and quota semantics surface on the wire as
//!    typed [`ErrorFrame`]s ([`ErrorCode::QueueFull`] /
//!    [`ErrorCode::QuotaExhausted`]) instead of blocking the loop.
//! 2. **Execute** — queue pumps run the work as usual. Each accepted
//!    ticket carries an [`on_ready`](ps3_core::Ticket::on_ready) hook that
//!    pokes the owning shard's [`Waker`], so completion interrupts that
//!    shard's poll immediately (no completion-polling latency).
//! 3. **Write** — completed tickets become [`ResponseFrame`]s (or
//!    [`ErrorCode::Internal`] errors, if the request panicked) queued on
//!    the connection's outbound buffer (`OutBuf`); at the end of the wakeup every
//!    connection with pending output is flushed with one `writev` gather
//!    write (the flush contract: encode many, flush once per wakeup, keep
//!    a byte cursor across partial writes). A progressive request's
//!    refining updates arrive the same way, as [`PartialFrame`]s delivered
//!    ahead of the final response (the ticket's
//!    [`on_progress`](ps3_core::Ticket::on_progress) hook pokes the same
//!    waker).
//!
//! Each connection speaks whatever protocol version its own frames carry:
//! the server answers a v1 request with v1 bytes and a v2 request with v2
//! bytes, so old clients keep working unchanged (they simply cannot
//! express declarative budgets or progressive streaming).
//!
//! A client that disconnects mid-request just gets its connection state
//! dropped; its in-flight executions complete in the router (and still
//! populate the answer cache) with nobody to deliver to — the pumps never
//! notice. With `net_shards: 1` the server degenerates to the classic
//! single-event-loop design.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ps3_core::{RouteError, Router, Tenant, Ticket};
use ps3_runtime::poll::{poll_fds, readv_fd, Interest, PollEntry, Waker};
use ps3_runtime::{Mailbox, ThreadPool};

use crate::outbuf::OutBuf;
use crate::proto::{
    ErrorCode, ErrorFrame, Frame, FrameBuffer, PartialFrame, ProtoError, RequestFrame,
    ResponseFrame, DEFAULT_MAX_FRAME, MIN_PROTO_VERSION,
};

/// Tuning knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted frame body, in bytes.
    pub max_frame: u32,
    /// Per-connection in-flight request quota (each connection is its own
    /// [`Tenant`]); `None` = unlimited. Exhaustion surfaces as
    /// [`ErrorCode::QuotaExhausted`] rather than queueing.
    pub per_conn_quota: Option<usize>,
    /// Accepted-connection cap across all shards; the listener stops
    /// accepting (connections queue in the OS backlog) while at the cap.
    pub max_connections: usize,
    /// Independent event loops to run. The default honors the
    /// `PS3_NET_SHARDS` environment variable, falling back to the number
    /// of available cores; values are clamped to at least 1 at bind.
    pub net_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
            per_conn_quota: Some(64),
            max_connections: 1024,
            net_shards: default_net_shards(),
        }
    }
}

/// `PS3_NET_SHARDS` override, else available cores, else 1.
fn default_net_shards() -> usize {
    if let Ok(raw) = std::env::var("PS3_NET_SHARDS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Wire-visible serving counters (monotonic except `open_connections`),
/// aggregated across every shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections currently open.
    pub open_connections: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Request frames admitted to the router.
    pub requests: u64,
    /// Error frames sent (refusals, malformed frames, panics).
    pub errors: u64,
}

/// Counters shared between the shard loops and [`NetServer`] handles.
#[derive(Debug, Default)]
struct Counters {
    open_connections: AtomicU64,
    accepted: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// One event loop's cross-thread mailboxes: everything another thread may
/// hand this shard, always paired with a poke of the shard's waker.
struct Shard {
    /// Interrupts this shard's poll (completions, handoffs, shutdown).
    waker: Waker,
    /// Completed requests awaiting delivery, as `(connection token,
    /// request id)` — pushed by each ticket's `on_ready` hook, drained by
    /// the shard loop. Keeps delivery O(completions) instead of scanning
    /// every in-flight ticket of every connection per wakeup.
    completed: Mailbox<(u64, u64)>,
    /// Progressive requests with undelivered refinements, same keying —
    /// pushed by each ticket's `on_progress` hook, drained ahead of
    /// completions so partials always precede their final response.
    progressed: Mailbox<(u64, u64)>,
    /// Accepted sockets dealt to this shard by the listener shard.
    handoff: Mailbox<TcpStream>,
    /// Connections this shard has registered (the round-robin evidence).
    accepted: AtomicU64,
}

impl Shard {
    fn new() -> io::Result<Shard> {
        Ok(Shard {
            waker: Waker::new()?,
            completed: Mailbox::new(),
            progressed: Mailbox::new(),
            handoff: Mailbox::new(),
            accepted: AtomicU64::new(0),
        })
    }
}

/// State shared between the handle and every shard loop.
struct Shared {
    shutdown: AtomicBool,
    counters: Counters,
    shards: Vec<Arc<Shard>>,
}

/// A running network front door over a [`Router`]. Dropping the handle
/// (or calling [`NetServer::shutdown`]) stops every shard loop, closes
/// every connection, and joins the loop threads; the router itself is
/// left running — shut it down separately.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Pool running one task per shard; dropping it joins the loops.
    pool: Option<Arc<ThreadPool>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start serving `router` with the default [`ServerConfig`].
    pub fn bind(router: Arc<Router>, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        Self::bind_with(router, addr, ServerConfig::default())
    }

    /// [`NetServer::bind`] with explicit tuning.
    pub fn bind_with(
        router: Arc<Router>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let n_shards = config.net_shards.max(1);
        let shards = (0..n_shards)
            .map(|_| Shard::new().map(Arc::new))
            .collect::<io::Result<Vec<_>>>()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            shards,
        });
        let pool = Arc::new(ThreadPool::new(n_shards));
        let mut listener = Some(listener);
        for id in 0..n_shards {
            let router = Arc::clone(&router);
            let shared = Arc::clone(&shared);
            let config = config.clone();
            // Shard 0 owns the listener; the others receive handoffs.
            let listener = if id == 0 { listener.take() } else { None };
            pool.spawn(move || ShardLoop::new(id, router, listener, shared, config).run());
        }
        Ok(NetServer {
            addr,
            shared,
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters, aggregated across shards.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            open_connections: c.open_connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// Connections registered per shard over the server's lifetime — the
    /// observable half of the round-robin accept contract (sums to
    /// [`ServerStats::accepted`] once every handoff has been drained).
    pub fn accepted_by_shard(&self) -> Vec<u64> {
        self.shared
            .shards
            .iter()
            .map(|s| s.accepted.load(Ordering::Relaxed))
            .collect()
    }

    /// Stop every shard loop, close every connection, and join the loop
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            shard.waker.wake();
        }
        // Dropping the pool joins one loop task per shard.
        self.pool = None;
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted connection's state, owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes awaiting frame completion.
    inbound: FrameBuffer,
    /// Outbound frames awaiting the socket (reused encode buffers,
    /// `writev` flush).
    out: OutBuf,
    /// This connection's submission handle (quota = admission control).
    tenant: Tenant,
    /// Accepted requests awaiting completion, by request id.
    in_flight: HashMap<u64, Ticket>,
    /// The protocol version of the peer's most recent frame — replies go
    /// out in the same dialect. Starts at the oldest supported version
    /// (pre-decode errors must be readable by anyone).
    peer_version: u8,
    /// Close once the write buffer drains (set after a framing error).
    close_after_flush: bool,
    /// Torn down at the end of the current iteration.
    dead: bool,
}

impl Conn {
    /// Queue a frame for delivery at the peer's version, degrading
    /// over-cap frames to typed refusals (see [`crate::outbuf`]). Bytes
    /// move at the end of the wakeup, when [`Conn::flush`] gathers the
    /// whole queue into one `writev`.
    fn send(&mut self, frame: &Frame, max_frame: u32) {
        self.out.push_frame(frame, self.peer_version, max_frame);
    }

    /// Gather-write as much buffered output as the socket accepts.
    fn flush(&mut self) {
        match self.out.flush(self.stream.as_raw_fd()) {
            Ok(true) => {
                if self.close_after_flush {
                    self.dead = true;
                }
            }
            Ok(false) => {} // WouldBlock: resume when the socket polls writable.
            Err(_) => self.dead = true,
        }
    }

    /// True while the poll loop should watch for writability.
    fn wants_write(&self) -> bool {
        self.out.has_pending()
    }
}

/// Reusable scatter-read destination, one per shard: a single `readv`
/// drains a connection into the primary buffer with the spill buffer as
/// headroom, so one syscall covers everything short of a 256 KiB burst
/// without one giant contiguous allocation per shard.
struct ReadScratch {
    primary: Box<[u8]>,
    spill: Box<[u8]>,
}

impl ReadScratch {
    fn new() -> ReadScratch {
        ReadScratch {
            primary: vec![0u8; 64 * 1024].into_boxed_slice(),
            spill: vec![0u8; 192 * 1024].into_boxed_slice(),
        }
    }
}

/// One shard's poll-dispatch-respond loop.
struct ShardLoop {
    id: usize,
    router: Arc<Router>,
    /// Present on shard 0 only — the accepting shard.
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    /// This shard's own mailboxes (`shared.shards[id]`).
    me: Arc<Shard>,
    config: ServerConfig,
    conns: HashMap<u64, Conn>,
    /// Next connection token; strided by the shard count so tokens are
    /// globally unique without cross-shard coordination.
    next_token: u64,
    /// Round-robin deal cursor (listener shard only).
    rr_next: usize,
    scratch: ReadScratch,
}

impl ShardLoop {
    fn new(
        id: usize,
        router: Arc<Router>,
        listener: Option<TcpListener>,
        shared: Arc<Shared>,
        config: ServerConfig,
    ) -> ShardLoop {
        let me = Arc::clone(&shared.shards[id]);
        ShardLoop {
            id,
            router,
            listener,
            shared,
            me,
            config,
            conns: HashMap::new(),
            next_token: id as u64,
            rr_next: 0,
            scratch: ReadScratch::new(),
        }
    }

    fn run(mut self) {
        let n_shards = self.shared.shards.len() as u64;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            // Entry layout per iteration: [waker, listener?, conns...].
            let mut entries = Vec::with_capacity(2 + self.conns.len());
            entries.push(PollEntry::new(self.me.waker.fd(), Interest::READ));
            let accepting = self.listener.is_some()
                && self
                    .shared
                    .counters
                    .open_connections
                    .load(Ordering::Relaxed)
                    < self.config.max_connections as u64;
            if accepting {
                let listener = self.listener.as_ref().expect("accepting implies listener");
                entries.push(PollEntry::new(listener.as_raw_fd(), Interest::READ));
            }
            let mut tokens = Vec::with_capacity(self.conns.len());
            for (&token, conn) in &self.conns {
                let interest = if conn.wants_write() {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                entries.push(PollEntry::new(conn.stream.as_raw_fd(), interest));
                tokens.push(token);
            }

            // Block until traffic, a completed ticket's wake, a handoff,
            // or shutdown.
            if poll_fds(&mut entries, None).is_err() {
                // EINTR is retried inside poll_fds; anything else here is
                // unrecoverable for the loop.
                break;
            }

            let mut it = entries.iter();
            let waker_entry = it.next().expect("waker entry");
            if waker_entry.is_readable() {
                self.me.waker.drain();
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Register sockets the listener shard dealt to this shard.
            for stream in self.me.handoff.drain() {
                self.register(stream, n_shards);
            }
            if accepting && it.next().expect("listener entry").is_readable() {
                self.accept_ready(n_shards);
            }
            for (entry, token) in it.zip(tokens) {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if entry.is_readable() {
                    read_ready(
                        conn,
                        token,
                        &self.me,
                        &self.shared,
                        self.config.max_frame,
                        &mut self.scratch,
                    );
                }
            }

            // Deliver refinements first so a request's partials always
            // precede its final response, then completed tickets.
            self.deliver_progress();
            self.deliver_completions();

            // One gather-write per connection with output, per wakeup —
            // every frame queued above leaves in a single writev unless
            // the socket pushes back (then it resumes on writability).
            for conn in self.conns.values_mut() {
                if conn.out.has_pending() || conn.close_after_flush {
                    conn.flush();
                }
            }

            let before = self.conns.len();
            self.conns.retain(|_, conn| {
                if conn.dead {
                    self.shared
                        .counters
                        .open_connections
                        .fetch_sub(1, Ordering::Relaxed);
                }
                !conn.dead
            });
            if self.conns.len() != before && self.id != 0 {
                // Freed capacity: the listener shard may be parked at the
                // connection cap with the listener out of its poll set.
                self.shared.shards[0].waker.wake();
            }
        }
        // Shutdown: dropping connections drops their tickets; in-flight
        // executions finish in the router with nobody to deliver to.
        self.conns.clear();
    }

    /// Accept every connection the backlog holds right now (listener
    /// shard only), dealing them round-robin across all shards.
    fn accept_ready(&mut self, n_shards: u64) {
        loop {
            if self
                .shared
                .counters
                .open_connections
                .load(Ordering::Relaxed)
                >= self.config.max_connections as u64
            {
                break;
            }
            let accepted = self
                .listener
                .as_ref()
                .expect("accept on listener shard")
                .accept();
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared
                        .counters
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let target = self.rr_next % n_shards as usize;
                    self.rr_next += 1;
                    if target == self.id {
                        self.register(stream, n_shards);
                    } else {
                        let shard = &self.shared.shards[target];
                        shard.handoff.push(stream);
                        shard.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Adopt a socket into this shard's poll set.
    fn register(&mut self, stream: TcpStream, n_shards: u64) {
        let token = self.next_token;
        self.next_token += n_shards;
        let tenant = self
            .router
            .tenant(format!("net-conn-{token}"), self.config.per_conn_quota);
        self.conns.insert(
            token,
            Conn {
                stream,
                inbound: FrameBuffer::new(self.config.max_frame),
                out: OutBuf::new(),
                tenant,
                in_flight: HashMap::new(),
                peer_version: MIN_PROTO_VERSION,
                close_after_flush: false,
                dead: false,
            },
        );
        self.me.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Turn every undelivered progress update into a [`PartialFrame`] on
    /// its connection's write queue. Driven by the `(token, request_id)`
    /// pairs the `on_progress` hooks recorded; a dead connection's updates
    /// are dropped with it. Only v2 peers receive partials — and only v2
    /// peers can ask (a v1 request cannot carry the progressive flag).
    fn deliver_progress(&mut self) {
        let max_frame = self.config.max_frame;
        for (token, request_id) in self.me.progressed.drain() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(ticket) = conn.in_flight.get(&request_id) else {
                continue;
            };
            for update in ticket.take_progress() {
                conn.send(
                    &Frame::Partial(PartialFrame::from_update(request_id, &update)),
                    max_frame,
                );
            }
        }
    }

    /// Move every completed ticket's outcome onto its connection's write
    /// queue — O(completions), driven by the `(token, request_id)` pairs
    /// the `on_ready` hooks recorded, never by scanning in-flight tickets.
    /// Requests complete in any order; the correlation id sorts it out
    /// client-side. Completions for connections that died in the meantime
    /// are skipped (their tickets dropped with the connection state).
    fn deliver_completions(&mut self) {
        let done = self.me.completed.drain();
        let max_frame = self.config.max_frame;
        for (token, request_id) in done {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(ticket) = conn.in_flight.remove(&request_id) else {
                continue;
            };
            // Progress recorded before completion must still go out first
            // (the executing pump pushes updates before it fulfills).
            for update in ticket.take_progress() {
                conn.send(
                    &Frame::Partial(PartialFrame::from_update(request_id, &update)),
                    max_frame,
                );
            }
            // fulfill() stores the result before firing the hook, so a
            // recorded completion always has one to take.
            match ticket.poll_take() {
                Some(Ok(outcome)) => {
                    let frame = Frame::Response(ResponseFrame::from_outcome(request_id, &outcome));
                    conn.send(&frame, max_frame);
                }
                Some(Err(payload)) => {
                    self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let mut message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "request panicked".to_owned());
                    // Panic payloads are arbitrary; keep the wire frame
                    // small whatever they contain.
                    if message.len() > 512 {
                        let mut end = 512;
                        while !message.is_char_boundary(end) {
                            end -= 1;
                        }
                        message.truncate(end);
                    }
                    conn.send(
                        &Frame::Error(ErrorFrame {
                            request_id,
                            code: ErrorCode::Internal,
                            message,
                        }),
                        max_frame,
                    );
                }
                None => continue,
            }
        }
    }
}

/// Drain a readable socket with one scatter-read (looping only if the
/// scratch filled completely), then decode and dispatch every complete
/// frame before the router sees the first one.
fn read_ready(
    conn: &mut Conn,
    token: u64,
    me: &Arc<Shard>,
    shared: &Arc<Shared>,
    max_frame: u32,
    scratch: &mut ReadScratch,
) {
    loop {
        let primary_len = scratch.primary.len();
        let capacity = primary_len + scratch.spill.len();
        match readv_fd(
            conn.stream.as_raw_fd(),
            &mut [&mut scratch.primary, &mut scratch.spill],
        ) {
            Ok(0) => {
                // Peer closed — possibly mid-request. Tear the state
                // down; outstanding tickets drop harmlessly.
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.inbound.push(&scratch.primary[..n.min(primary_len)]);
                if n > primary_len {
                    conn.inbound.push(&scratch.spill[..n - primary_len]);
                }
                if n < capacity {
                    // The socket gave less than we could take: drained.
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    loop {
        match conn.inbound.next_frame() {
            Ok(Some(frame)) => {
                // Answer in the dialect the peer just spoke.
                if let Some(v) = conn.inbound.last_version() {
                    conn.peer_version = v;
                }
                match frame {
                    Frame::Request(req) => submit(conn, token, me, shared, max_frame, req),
                    _ => {
                        // Clients must not send server-kind frames.
                        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                        conn.send(
                            &Frame::Error(ErrorFrame {
                                request_id: 0,
                                code: ErrorCode::Malformed,
                                message: "clients send request frames only".into(),
                            }),
                            max_frame,
                        );
                    }
                }
            }
            Ok(None) => break,
            Err(err) => {
                // Framing is unrecoverable: answer with a typed error
                // and close once it has flushed.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let code = match &err {
                    ProtoError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    ProtoError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::Malformed,
                };
                conn.send(
                    &Frame::Error(ErrorFrame {
                        request_id: 0,
                        code,
                        message: err.to_string(),
                    }),
                    max_frame,
                );
                conn.close_after_flush = true;
                break;
            }
        }
    }
}

/// Submit one decoded request through the connection's tenant.
fn submit(
    conn: &mut Conn,
    token: u64,
    me: &Arc<Shard>,
    shared: &Arc<Shared>,
    max_frame: u32,
    req: RequestFrame,
) {
    let request_id = req.request_id;
    if conn.in_flight.contains_key(&request_id) {
        // Correlation ids must be unique per connection while in
        // flight; silently replacing the ticket would cross answers.
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        conn.send(
            &Frame::Error(ErrorFrame {
                request_id,
                code: ErrorCode::Malformed,
                message: "request id already in flight on this connection".into(),
            }),
            max_frame,
        );
        return;
    }
    let progressive = req.progressive;
    match conn.tenant.try_submit(req.into_query_request()) {
        Ok(ticket) => {
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            if progressive {
                // Refinements flow through the owning shard's waker; the
                // shard loop turns them into Partial frames.
                let hook_shard = Arc::clone(me);
                ticket.on_progress(move || {
                    hook_shard.progressed.push((token, request_id));
                    hook_shard.waker.wake();
                });
            }
            let hook_shard = Arc::clone(me);
            // The hook only records the completion and pokes the poll;
            // the shard loop delivers. Runs immediately if the request
            // already finished (a cache hit executed by a fast pump).
            ticket.on_ready(move || {
                hook_shard.completed.push((token, request_id));
                hook_shard.waker.wake();
            });
            conn.in_flight.insert(request_id, ticket);
        }
        Err(err) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let code = match &err {
                RouteError::UnknownTable(_) => ErrorCode::UnknownTable,
                RouteError::QueueFull(_) => ErrorCode::QueueFull,
                RouteError::QuotaExhausted(_) => ErrorCode::QuotaExhausted,
                RouteError::Closed(_) => ErrorCode::Shutdown,
            };
            let message = err.to_string();
            conn.send(
                &Frame::Error(ErrorFrame {
                    request_id,
                    code,
                    message,
                }),
                max_frame,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_defaults_honor_the_env_override_shape() {
        // Not an env-mutating test (that would race the process); just pin
        // the clamp and fallback logic the default path builds on.
        let config = ServerConfig::default();
        assert!(config.net_shards >= 1, "default shard count is positive");
        let explicit = ServerConfig {
            net_shards: 3,
            ..ServerConfig::default()
        };
        assert_eq!(explicit.net_shards, 3);
    }

    #[test]
    fn token_stride_keeps_tokens_globally_unique() {
        // Shard s hands out tokens s, s+n, s+2n, ...: disjoint across
        // shards by construction. Pin the arithmetic the hooks rely on
        // (a completion keyed by token must never reach a foreign conn).
        let n = 4u64;
        let mut seen = std::collections::HashSet::new();
        for shard in 0..n {
            let mut next = shard;
            for _ in 0..8 {
                assert!(seen.insert(next), "token {next} dealt twice");
                next += n;
            }
        }
    }
}
