//! The event-loop TCP server: one readiness-polled task feeding the
//! [`Router`].
//!
//! A single detached [`ThreadPool`] task (so `ps3_runtime` remains the
//! only thread-owning crate) runs the whole front door: a non-blocking
//! listener plus every accepted connection, multiplexed with
//! [`ps3_runtime::poll::poll_fds`]. The loop never blocks on a socket or
//! a ticket:
//!
//! 1. **Read** — readable connections drain into a [`FrameBuffer`];
//!    complete [`RequestFrame`]s submit through that connection's own
//!    [`Tenant`] handle with `try_submit`, so the router's backpressure
//!    and quota semantics surface on the wire as typed
//!    [`ErrorFrame`]s ([`ErrorCode::QueueFull`] /
//!    [`ErrorCode::QuotaExhausted`]) instead of blocking the loop.
//! 2. **Execute** — queue pumps run the work as usual. Each accepted
//!    ticket carries an [`on_ready`](ps3_core::Ticket::on_ready) hook that
//!    pokes the loop's [`Waker`], so completion interrupts the poll
//!    immediately (no completion-polling latency).
//! 3. **Write** — completed tickets become [`ResponseFrame`]s (or
//!    [`ErrorCode::Internal`] errors, if the request panicked) appended to
//!    the connection's write buffer and flushed as far as the socket
//!    allows; the rest goes out when the socket polls writable. A
//!    progressive request's refining updates arrive the same way, as
//!    [`PartialFrame`]s delivered ahead of the final response (the ticket's
//!    [`on_progress`](ps3_core::Ticket::on_progress) hook pokes the same
//!    waker).
//!
//! Each connection speaks whatever protocol version its own frames carry:
//! the server answers a v1 request with v1 bytes and a v2 request with v2
//! bytes, so old clients keep working unchanged (they simply cannot
//! express declarative budgets or progressive streaming).
//!
//! A client that disconnects mid-request just gets its connection state
//! dropped; its in-flight executions complete in the router (and still
//! populate the answer cache) with nobody to deliver to — the pumps never
//! notice.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ps3_core::{RouteError, Router, Tenant, Ticket};
use ps3_runtime::poll::{poll_fds, Interest, PollEntry, Waker};
use ps3_runtime::{Mailbox, ThreadPool};

use crate::proto::{
    encode_frame_at, ErrorCode, ErrorFrame, Frame, FrameBuffer, PartialFrame, ProtoError,
    RequestFrame, ResponseFrame, DEFAULT_MAX_FRAME, MIN_PROTO_VERSION,
};

/// Tuning knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted frame body, in bytes.
    pub max_frame: u32,
    /// Per-connection in-flight request quota (each connection is its own
    /// [`Tenant`]); `None` = unlimited. Exhaustion surfaces as
    /// [`ErrorCode::QuotaExhausted`] rather than queueing.
    pub per_conn_quota: Option<usize>,
    /// Accepted-connection cap; the listener stops accepting (connections
    /// queue in the OS backlog) while at the cap.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
            per_conn_quota: Some(64),
            max_connections: 1024,
        }
    }
}

/// Wire-visible serving counters (monotonic except `open_connections`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections currently open.
    pub open_connections: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Request frames admitted to the router.
    pub requests: u64,
    /// Error frames sent (refusals, malformed frames, panics).
    pub errors: u64,
}

/// Counters shared between the event loop and [`NetServer`] handles.
#[derive(Debug, Default)]
struct Counters {
    open_connections: AtomicU64,
    accepted: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// State shared between the handle and the event-loop task.
struct Shared {
    waker: Waker,
    shutdown: AtomicBool,
    counters: Counters,
    /// Completed requests awaiting delivery, as `(connection token,
    /// request id)` — pushed by each ticket's `on_ready` hook, drained by
    /// the event loop. Keeps delivery O(completions) instead of scanning
    /// every in-flight ticket of every connection per wakeup.
    completed: Mailbox<(u64, u64)>,
    /// Progressive requests with undelivered refinements, same keying —
    /// pushed by each ticket's `on_progress` hook, drained ahead of
    /// completions so partials always precede their final response.
    progressed: Mailbox<(u64, u64)>,
}

/// A running network front door over a [`Router`]. Dropping the handle
/// (or calling [`NetServer::shutdown`]) stops the event loop, closes every
/// connection, and joins the loop's thread; the router itself is left
/// running — shut it down separately.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// One-worker pool running the event loop; dropping it joins the loop.
    pool: Option<Arc<ThreadPool>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start serving `router` with the default [`ServerConfig`].
    pub fn bind(router: Arc<Router>, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        Self::bind_with(router, addr, ServerConfig::default())
    }

    /// [`NetServer::bind`] with explicit tuning.
    pub fn bind_with(
        router: Arc<Router>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            waker: Waker::new()?,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            completed: Mailbox::new(),
            progressed: Mailbox::new(),
        });
        let pool = Arc::new(ThreadPool::new(1));
        {
            let shared = Arc::clone(&shared);
            pool.spawn(move || EventLoop::new(router, listener, shared, config).run());
        }
        Ok(NetServer {
            addr,
            shared,
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            open_connections: c.open_connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// Stop the event loop, close every connection, and join the loop
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        // Dropping the 1-worker pool joins the loop task.
        self.pool = None;
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Encode a server→client frame at the connection's protocol version,
/// enforcing the outbound frame cap. A frame that exceeds the cap (or
/// fails to encode — an over-wide group key, an overlong message) degrades
/// to a typed [`ErrorCode::FrameTooLarge`] refusal for the same request id
/// instead of wedging the client, whose `FrameBuffer` would reject the
/// oversized length prefix and lose framing permanently. The refusal
/// itself is a small constant-size frame (well under any sane cap, and
/// under every client's own limit) that encodes identically at every
/// version.
fn encode_outbound(frame: &Frame, max_frame: u32, version: u8) -> Vec<u8> {
    match encode_frame_at(frame, version) {
        Ok(wire) if wire.len() - 4 <= max_frame as usize => wire,
        _ => {
            let request_id = match frame {
                Frame::Request(f) => f.request_id,
                Frame::Response(f) => f.request_id,
                Frame::Partial(f) => f.request_id,
                Frame::Error(f) => f.request_id,
            };
            let refusal = Frame::Error(ErrorFrame {
                request_id,
                code: ErrorCode::FrameTooLarge,
                message: "answer exceeds the response frame cap; \
                          narrow the query or raise max_frame"
                    .into(),
            });
            encode_frame_at(&refusal, version).expect("static error frames always encode")
        }
    }
}

/// One accepted connection's state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes awaiting frame completion.
    inbound: FrameBuffer,
    /// Outbound bytes not yet accepted by the socket.
    outbound: Vec<u8>,
    /// How much of `outbound` has been written.
    flushed: usize,
    /// This connection's submission handle (quota = admission control).
    tenant: Tenant,
    /// Accepted requests awaiting completion, by request id.
    in_flight: HashMap<u64, Ticket>,
    /// The protocol version of the peer's most recent frame — replies go
    /// out in the same dialect. Starts at the oldest supported version
    /// (pre-decode errors must be readable by anyone).
    peer_version: u8,
    /// Close once the write buffer drains (set after a framing error).
    close_after_flush: bool,
    /// Torn down at the end of the current iteration.
    dead: bool,
}

impl Conn {
    /// Queue a frame for delivery at the peer's version, degrading
    /// over-cap frames to typed refusals (see [`encode_outbound`]).
    fn send(&mut self, frame: &Frame, max_frame: u32) {
        self.outbound
            .extend_from_slice(&encode_outbound(frame, max_frame, self.peer_version));
    }

    /// Write as much buffered output as the socket accepts.
    fn flush(&mut self) {
        while self.flushed < self.outbound.len() {
            match self.stream.write(&self.outbound[self.flushed..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.flushed += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.flushed == self.outbound.len() {
            self.outbound.clear();
            self.flushed = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        }
    }

    /// True while the poll loop should watch for writability.
    fn wants_write(&self) -> bool {
        self.flushed < self.outbound.len()
    }
}

/// The server's poll-dispatch-respond loop.
struct EventLoop {
    router: Arc<Router>,
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServerConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl EventLoop {
    fn new(
        router: Arc<Router>,
        listener: TcpListener,
        shared: Arc<Shared>,
        config: ServerConfig,
    ) -> EventLoop {
        EventLoop {
            router,
            listener,
            shared,
            config,
            conns: HashMap::new(),
            next_token: 0,
        }
    }

    fn run(mut self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            // Entry layout per iteration: [waker, listener?, conns...].
            let mut entries = Vec::with_capacity(2 + self.conns.len());
            entries.push(PollEntry::new(self.shared.waker.fd(), Interest::READ));
            let accepting = self.conns.len() < self.config.max_connections;
            if accepting {
                entries.push(PollEntry::new(self.listener.as_raw_fd(), Interest::READ));
            }
            let mut tokens = Vec::with_capacity(self.conns.len());
            for (&token, conn) in &self.conns {
                let interest = if conn.wants_write() {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                entries.push(PollEntry::new(conn.stream.as_raw_fd(), interest));
                tokens.push(token);
            }

            // Block until traffic, a completed ticket's wake, or shutdown.
            if poll_fds(&mut entries, None).is_err() {
                // EINTR is retried inside poll_fds; anything else here is
                // unrecoverable for the loop.
                break;
            }

            let mut it = entries.iter();
            let waker_entry = it.next().expect("waker entry");
            if waker_entry.is_readable() {
                self.shared.waker.drain();
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            if accepting && it.next().expect("listener entry").is_readable() {
                self.accept_ready();
            }
            for (entry, token) in it.zip(tokens) {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if entry.is_readable() {
                    Self::read_ready(conn, token, &self.shared, self.config.max_frame);
                }
                if entry.is_writable() || entry.is_error() {
                    conn.flush();
                }
            }

            // Deliver refinements first so a request's partials always
            // precede its final response, then completed tickets.
            self.deliver_progress();
            self.deliver_completions();
            self.conns.retain(|_, conn| {
                if conn.dead {
                    self.shared
                        .counters
                        .open_connections
                        .fetch_sub(1, Ordering::Relaxed);
                }
                !conn.dead
            });
        }
        // Shutdown: dropping connections drops their tickets; in-flight
        // executions finish in the router with nobody to deliver to.
        self.conns.clear();
    }

    /// Accept every connection the backlog holds right now.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let tenant = self
                        .router
                        .tenant(format!("net-conn-{token}"), self.config.per_conn_quota);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            inbound: FrameBuffer::new(self.config.max_frame),
                            outbound: Vec::new(),
                            flushed: 0,
                            tenant,
                            in_flight: HashMap::new(),
                            peer_version: MIN_PROTO_VERSION,
                            close_after_flush: false,
                            dead: false,
                        },
                    );
                    self.shared
                        .counters
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if self.conns.len() >= self.config.max_connections {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Drain a readable socket and dispatch every complete frame.
    fn read_ready(conn: &mut Conn, token: u64, shared: &Arc<Shared>, max_frame: u32) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed — possibly mid-request. Tear the state
                    // down; outstanding tickets drop harmlessly.
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.inbound.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        loop {
            match conn.inbound.next_frame() {
                Ok(Some(frame)) => {
                    // Answer in the dialect the peer just spoke.
                    if let Some(v) = conn.inbound.last_version() {
                        conn.peer_version = v;
                    }
                    match frame {
                        Frame::Request(req) => Self::submit(conn, token, shared, max_frame, req),
                        _ => {
                            // Clients must not send server-kind frames.
                            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                            conn.send(
                                &Frame::Error(ErrorFrame {
                                    request_id: 0,
                                    code: ErrorCode::Malformed,
                                    message: "clients send request frames only".into(),
                                }),
                                max_frame,
                            );
                        }
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is unrecoverable: answer with a typed error
                    // and close once it has flushed.
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let code = match &err {
                        ProtoError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                        ProtoError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
                        _ => ErrorCode::Malformed,
                    };
                    conn.send(
                        &Frame::Error(ErrorFrame {
                            request_id: 0,
                            code,
                            message: err.to_string(),
                        }),
                        max_frame,
                    );
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        conn.flush();
    }

    /// Submit one decoded request through the connection's tenant.
    fn submit(
        conn: &mut Conn,
        token: u64,
        shared: &Arc<Shared>,
        max_frame: u32,
        req: RequestFrame,
    ) {
        let request_id = req.request_id;
        if conn.in_flight.contains_key(&request_id) {
            // Correlation ids must be unique per connection while in
            // flight; silently replacing the ticket would cross answers.
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            conn.send(
                &Frame::Error(ErrorFrame {
                    request_id,
                    code: ErrorCode::Malformed,
                    message: "request id already in flight on this connection".into(),
                }),
                max_frame,
            );
            return;
        }
        let progressive = req.progressive;
        match conn.tenant.try_submit(req.into_query_request()) {
            Ok(ticket) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                if progressive {
                    // Refinements flow through the same waker; the event
                    // loop turns them into Partial frames.
                    let hook_shared = Arc::clone(shared);
                    ticket.on_progress(move || {
                        hook_shared.progressed.push((token, request_id));
                        hook_shared.waker.wake();
                    });
                }
                let hook_shared = Arc::clone(shared);
                // The hook only records the completion and pokes the poll;
                // the event loop delivers. Runs immediately if the request
                // already finished (a cache hit executed by a fast pump).
                ticket.on_ready(move || {
                    hook_shared.completed.push((token, request_id));
                    hook_shared.waker.wake();
                });
                conn.in_flight.insert(request_id, ticket);
            }
            Err(err) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let code = match &err {
                    RouteError::UnknownTable(_) => ErrorCode::UnknownTable,
                    RouteError::QueueFull(_) => ErrorCode::QueueFull,
                    RouteError::QuotaExhausted(_) => ErrorCode::QuotaExhausted,
                    RouteError::Closed(_) => ErrorCode::Shutdown,
                };
                let message = err.to_string();
                conn.send(
                    &Frame::Error(ErrorFrame {
                        request_id,
                        code,
                        message,
                    }),
                    max_frame,
                );
            }
        }
    }

    /// Turn every undelivered progress update into a [`PartialFrame`] on
    /// its connection's write buffer. Driven by the `(token, request_id)`
    /// pairs the `on_progress` hooks recorded; a dead connection's updates
    /// are dropped with it. Only v2 peers receive partials — and only v2
    /// peers can ask (a v1 request cannot carry the progressive flag).
    fn deliver_progress(&mut self) {
        let max_frame = self.config.max_frame;
        for (token, request_id) in self.shared.progressed.drain() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(ticket) = conn.in_flight.get(&request_id) else {
                continue;
            };
            for update in ticket.take_progress() {
                conn.send(
                    &Frame::Partial(PartialFrame::from_update(request_id, &update)),
                    max_frame,
                );
            }
            conn.flush();
        }
    }

    /// Move every completed ticket's outcome onto its connection's write
    /// buffer — O(completions), driven by the `(token, request_id)` pairs
    /// the `on_ready` hooks recorded, never by scanning in-flight tickets.
    /// Requests complete in any order; the correlation id sorts it out
    /// client-side. Completions for connections that died in the meantime
    /// are skipped (their tickets dropped with the connection state).
    fn deliver_completions(&mut self) {
        let done = self.shared.completed.drain();
        let max_frame = self.config.max_frame;
        for (token, request_id) in done {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(ticket) = conn.in_flight.remove(&request_id) else {
                continue;
            };
            // Progress recorded before completion must still go out first
            // (the executing pump pushes updates before it fulfills).
            for update in ticket.take_progress() {
                conn.send(
                    &Frame::Partial(PartialFrame::from_update(request_id, &update)),
                    max_frame,
                );
            }
            // fulfill() stores the result before firing the hook, so a
            // recorded completion always has one to take.
            match ticket.poll_take() {
                Some(Ok(outcome)) => {
                    let frame = Frame::Response(ResponseFrame::from_outcome(request_id, &outcome));
                    conn.send(&frame, max_frame);
                }
                Some(Err(payload)) => {
                    self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let mut message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "request panicked".to_owned());
                    // Panic payloads are arbitrary; keep the wire frame
                    // small whatever they contain.
                    if message.len() > 512 {
                        let mut end = 512;
                        while !message.is_char_boundary(end) {
                            end -= 1;
                        }
                        message.truncate(end);
                    }
                    conn.send(
                        &Frame::Error(ErrorFrame {
                            request_id,
                            code: ErrorCode::Internal,
                            message,
                        }),
                        max_frame,
                    );
                }
                None => continue,
            }
            conn.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_body, ResponseFrame, WireRow, PROTO_VERSION};
    use ps3_core::ErrorEstimate;

    fn response(request_id: u64, rows: Vec<WireRow>) -> ResponseFrame {
        let n_aggs = rows.first().map_or(0, |r| r.values.len());
        ResponseFrame {
            request_id,
            rows,
            partitions_read: 1,
            picker_ms: 0.0,
            planned_frac: 0.5,
            exact: false,
            error: ErrorEstimate::no_signal(n_aggs),
        }
    }

    #[test]
    fn over_cap_responses_degrade_to_a_typed_refusal() {
        // A response bigger than the outbound cap must become a decodable
        // FrameTooLarge error for the same request id — never an oversized
        // frame the client's FrameBuffer would choke on.
        let big = Frame::Response(response(
            42,
            (0..64)
                .map(|i| WireRow {
                    key: vec![i],
                    values: vec![i as f64],
                })
                .collect(),
        ));
        for version in [1, PROTO_VERSION] {
            let wire = encode_outbound(&big, 64, version);
            let body_len = u32::from_le_bytes(wire[..4].try_into().unwrap());
            assert!(
                body_len < 128,
                "the refusal is a small constant-size frame any client \
                 accepts (got {body_len} bytes at v{version})"
            );
            match decode_body(&wire[4..]).expect("refusal decodes") {
                Frame::Error(e) => {
                    assert_eq!(e.code, ErrorCode::FrameTooLarge);
                    assert_eq!(e.request_id, 42, "refusal keeps the correlation id");
                }
                other => panic!("expected error frame, got {other:?}"),
            }
        }

        // Under the cap, the response passes through unchanged.
        let small = Frame::Response(response(7, vec![]));
        let wire = encode_outbound(&small, DEFAULT_MAX_FRAME, PROTO_VERSION);
        assert_eq!(decode_body(&wire[4..]).expect("decodes"), small);
    }

    #[test]
    fn partials_refuse_v1_but_degrade_gracefully() {
        // A partial can never legitimately target a v1 peer (v1 requests
        // cannot be progressive); if one somehow did, the degrade path
        // still emits a decodable typed error, not a wedged connection.
        let partial = Frame::Partial(PartialFrame {
            request_id: 9,
            seq: 0,
            partitions_done: 1,
            partitions_total: 4,
            rows: vec![],
            rel_err: f64::NAN,
        });
        let wire = encode_outbound(&partial, DEFAULT_MAX_FRAME, 1);
        match decode_body(&wire[4..]).expect("decodes") {
            Frame::Error(e) => assert_eq!(e.request_id, 9),
            other => panic!("expected error frame, got {other:?}"),
        }
        // At v2 it passes through unchanged.
        let wire = encode_outbound(&partial, DEFAULT_MAX_FRAME, PROTO_VERSION);
        assert!(matches!(
            decode_body(&wire[4..]).expect("decodes"),
            Frame::Partial(_)
        ));
    }
}
