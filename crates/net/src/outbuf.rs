//! Per-connection outbound frame queue with buffer reuse and vectored
//! flush.
//!
//! The serving hot path encodes one frame per answer; doing that into a
//! fresh `Vec` per frame made the allocator a per-response cost. An
//! [`OutBuf`] instead keeps a pool of recycled encode buffers per
//! connection: each queued frame is encoded into a recycled buffer via
//! [`encode_frame_at_into`](crate::proto::encode_frame_at_into), and a
//! flush hands the whole queue to the kernel with one
//! [`writev_fd`](ps3_runtime::poll::writev_fd) gather write. Partial
//! writes are resumed from a cursor over the head frame; fully-written
//! buffers go back to the pool. The `fresh_allocs` counter exists so a
//! test can assert the steady state allocates nothing per frame.
//!
//! The encode step enforces the outbound frame cap: a frame that exceeds
//! it (or fails to encode — an over-wide group key, an overlong message)
//! degrades to a typed [`ErrorCode::FrameTooLarge`] refusal for the same
//! request id instead of wedging the client, whose `FrameBuffer` would
//! reject the oversized length prefix and lose framing permanently. The
//! refusal itself is a small constant-size frame (well under any sane cap,
//! and under every client's own limit) that encodes identically at every
//! version.

#![cfg(unix)]

use std::collections::VecDeque;
use std::io;
use std::os::unix::io::RawFd;

use ps3_runtime::poll::{writev_fd, IOV_BATCH};

use crate::proto::{encode_frame_at_into, ErrorCode, ErrorFrame, Frame};

/// Recycled encode buffers kept per connection. A connection's queue
/// depth is bounded by its in-flight quota (default 64); keeping half
/// that many spares covers bursts without hoarding.
const MAX_SPARE: usize = 32;

/// Buffers that grew beyond this capacity are dropped instead of
/// recycled, so one huge answer does not pin its allocation for the
/// connection's lifetime.
const MAX_SPARE_CAPACITY: usize = 256 * 1024;

/// Outbound side of one connection: encoded frames awaiting the socket.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    /// Encoded frames in send order; the head may be partially written.
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the head frame already accepted by the socket.
    head_written: usize,
    /// Bytes queued and not yet written.
    pending: usize,
    /// Recycled encode buffers.
    spare: Vec<Vec<u8>>,
    /// Buffers allocated because no spare was available — the churn
    /// metric the steady-state test pins to zero.
    fresh_allocs: u64,
}

impl OutBuf {
    pub(crate) fn new() -> OutBuf {
        OutBuf::default()
    }

    /// Queue `frame` for delivery at `version`, degrading over-cap frames
    /// to typed refusals (see the module docs). Reuses a spare buffer when
    /// one is available; the allocation only happens while the connection
    /// is still growing its pool.
    pub(crate) fn push_frame(&mut self, frame: &Frame, version: u8, max_frame: u32) {
        let mut buf = match self.spare.pop() {
            Some(b) => b,
            None => {
                self.fresh_allocs += 1;
                Vec::with_capacity(256)
            }
        };
        encode_outbound_into(frame, version, max_frame, &mut buf);
        self.pending += buf.len();
        self.queue.push_back(buf);
    }

    /// True while bytes are queued — the poll loop's write-interest signal.
    pub(crate) fn has_pending(&self) -> bool {
        self.pending > 0
    }

    /// Fresh encode-buffer allocations over the connection's lifetime —
    /// observable only by the churn test; production code never reads it.
    #[cfg(test)]
    pub(crate) fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Gather-write the whole queue to `fd` with as few `writev(2)` calls
    /// as it takes (one, in the common case). Returns `Ok(true)` when the
    /// queue drained, `Ok(false)` when the socket stopped accepting bytes
    /// (`WouldBlock` — the cursor remembers where to resume), and `Err`
    /// when the connection is unusable.
    pub(crate) fn flush(&mut self, fd: RawFd) -> io::Result<bool> {
        while !self.queue.is_empty() {
            let mut iov: Vec<&[u8]> = Vec::with_capacity(self.queue.len().min(IOV_BATCH));
            let mut frames = self.queue.iter();
            let head = frames.next().expect("non-empty queue has a head");
            iov.push(&head[self.head_written..]);
            iov.extend(frames.take(IOV_BATCH - 1).map(Vec::as_slice));
            match writev_fd(fd, &iov) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Account `n` written bytes: retire fully-sent frames into the spare
    /// pool and move the cursor within the frame the write stopped in.
    fn advance(&mut self, mut n: usize) {
        self.pending -= n;
        while n > 0 {
            let head_left = self.queue[0].len() - self.head_written;
            if n < head_left {
                self.head_written += n;
                return;
            }
            n -= head_left;
            self.head_written = 0;
            let mut buf = self.queue.pop_front().expect("accounted frame exists");
            if self.spare.len() < MAX_SPARE && buf.capacity() <= MAX_SPARE_CAPACITY {
                buf.clear();
                self.spare.push(buf);
            }
        }
    }
}

/// Encode a server→client frame at the connection's protocol version into
/// `buf` (cleared first), enforcing the outbound frame cap by degrading to
/// an [`ErrorCode::FrameTooLarge`] refusal — see the module docs.
pub(crate) fn encode_outbound_into(frame: &Frame, version: u8, max_frame: u32, buf: &mut Vec<u8>) {
    buf.clear();
    match encode_frame_at_into(frame, version, buf) {
        Ok(()) if buf.len() - 4 <= max_frame as usize => {}
        _ => {
            buf.clear();
            let request_id = match frame {
                Frame::Request(f) => f.request_id,
                Frame::Response(f) => f.request_id,
                Frame::Partial(f) => f.request_id,
                Frame::Error(f) => f.request_id,
            };
            let refusal = Frame::Error(ErrorFrame {
                request_id,
                code: ErrorCode::FrameTooLarge,
                message: "answer exceeds the response frame cap; \
                          narrow the query or raise max_frame"
                    .into(),
            });
            encode_frame_at_into(&refusal, version, buf)
                .expect("static error frames always encode");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{
        decode_body, PartialFrame, ResponseFrame, WireRow, DEFAULT_MAX_FRAME, PROTO_VERSION,
    };
    use ps3_core::ErrorEstimate;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn encode_outbound(frame: &Frame, max_frame: u32, version: u8) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_outbound_into(frame, version, max_frame, &mut buf);
        buf
    }

    fn response(request_id: u64, rows: Vec<WireRow>) -> ResponseFrame {
        let n_aggs = rows.first().map_or(0, |r| r.values.len());
        ResponseFrame {
            request_id,
            rows,
            partitions_read: 1,
            picker_ms: 0.0,
            planned_frac: 0.5,
            exact: false,
            error: ErrorEstimate::no_signal(n_aggs),
            sketch: None,
        }
    }

    #[test]
    fn over_cap_responses_degrade_to_a_typed_refusal() {
        // A response bigger than the outbound cap must become a decodable
        // FrameTooLarge error for the same request id — never an oversized
        // frame the client's FrameBuffer would choke on.
        let big = Frame::Response(response(
            42,
            (0..64)
                .map(|i| WireRow {
                    key: vec![i],
                    values: vec![i as f64],
                })
                .collect(),
        ));
        for version in [1, PROTO_VERSION] {
            let wire = encode_outbound(&big, 64, version);
            let body_len = u32::from_le_bytes(wire[..4].try_into().unwrap());
            assert!(
                body_len < 128,
                "the refusal is a small constant-size frame any client \
                 accepts (got {body_len} bytes at v{version})"
            );
            match decode_body(&wire[4..]).expect("refusal decodes") {
                Frame::Error(e) => {
                    assert_eq!(e.code, ErrorCode::FrameTooLarge);
                    assert_eq!(e.request_id, 42, "refusal keeps the correlation id");
                }
                other => panic!("expected error frame, got {other:?}"),
            }
        }

        // Under the cap, the response passes through unchanged.
        let small = Frame::Response(response(7, vec![]));
        let wire = encode_outbound(&small, DEFAULT_MAX_FRAME, PROTO_VERSION);
        assert_eq!(decode_body(&wire[4..]).expect("decodes"), small);
    }

    #[test]
    fn partials_refuse_v1_but_degrade_gracefully() {
        // A partial can never legitimately target a v1 peer (v1 requests
        // cannot be progressive); if one somehow did, the degrade path
        // still emits a decodable typed error, not a wedged connection.
        let partial = Frame::Partial(PartialFrame {
            request_id: 9,
            seq: 0,
            partitions_done: 1,
            partitions_total: 4,
            rows: vec![],
            rel_err: f64::NAN,
        });
        let wire = encode_outbound(&partial, DEFAULT_MAX_FRAME, 1);
        match decode_body(&wire[4..]).expect("decodes") {
            Frame::Error(e) => assert_eq!(e.request_id, 9),
            other => panic!("expected error frame, got {other:?}"),
        }
        // At v2 it passes through unchanged.
        let wire = encode_outbound(&partial, DEFAULT_MAX_FRAME, PROTO_VERSION);
        assert!(matches!(
            decode_body(&wire[4..]).expect("decodes"),
            Frame::Partial(_)
        ));
    }

    #[test]
    fn steady_state_sends_frames_without_fresh_allocations() {
        // The whole point of OutBuf: after the pool warms up, pushing and
        // flushing frames recycles buffers instead of allocating. Blocking
        // sockets keep the flush deterministic (every writev completes).
        let (sender, mut receiver) = UnixStream::pair().unwrap();
        let mut out = OutBuf::new();
        let frame = Frame::Response(response(1, vec![]));

        let burst = 4;
        for _ in 0..burst {
            out.push_frame(&frame, PROTO_VERSION, DEFAULT_MAX_FRAME);
        }
        assert!(out.flush(sender.as_raw_fd()).unwrap());
        let warm = out.fresh_allocs();
        assert!(
            warm <= burst as u64,
            "at most one allocation per queued frame"
        );

        let mut sink = vec![0u8; 64 * 1024];
        for _ in 0..50 {
            for _ in 0..burst {
                out.push_frame(&frame, PROTO_VERSION, DEFAULT_MAX_FRAME);
            }
            assert!(out.flush(sender.as_raw_fd()).unwrap());
            // Keep the socket buffer empty so blocking writes never stall
            // (a short read is fine — draining is all that matters here).
            let drained = receiver.read(&mut sink).unwrap();
            assert!(drained > 0, "the flush above wrote bytes");
        }
        assert_eq!(
            out.fresh_allocs(),
            warm,
            "steady-state frames must reuse pooled encode buffers"
        );
    }

    #[test]
    fn partial_writes_resume_at_the_cursor_byte_exactly() {
        // Stuff a nonblocking socket until WouldBlock, drain the peer,
        // resume — the receiver must see the exact queued byte stream.
        let (sender, mut receiver) = UnixStream::pair().unwrap();
        sender.set_nonblocking(true).unwrap();
        receiver.set_nonblocking(true).unwrap();

        let big = Frame::Response(response(
            3,
            (0..20_000)
                .map(|i| WireRow {
                    key: vec![i],
                    values: vec![i as f64, -(i as f64)],
                })
                .collect(),
        ));
        let mut expected = Vec::new();
        let mut out = OutBuf::new();
        for _ in 0..4 {
            encode_frame_at_into(&big, PROTO_VERSION, &mut expected).unwrap();
            out.push_frame(&big, PROTO_VERSION, DEFAULT_MAX_FRAME);
        }

        let mut got = Vec::new();
        let mut chunk = vec![0u8; 96 * 1024];
        loop {
            let drained = out.flush(sender.as_raw_fd()).unwrap();
            match receiver.read(&mut chunk) {
                Ok(n) => got.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("receiver: {e}"),
            }
            if drained && !out.has_pending() && got.len() == expected.len() {
                break;
            }
        }
        assert!(
            got == expected,
            "resumed writes must not skip or repeat bytes"
        );
    }
}
