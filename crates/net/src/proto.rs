//! The PS3 wire protocol: length-prefixed, versioned binary frames.
//!
//! Everything on the wire is a **frame**: a 4-byte little-endian body
//! length followed by the body, which starts with a fixed header
//! (`version`, `kind`, `request_id`) and continues with a kind-specific
//! payload. Four kinds exist: [`RequestFrame`] (client → server: a table
//! route, a serialized [`Query`], and the method/[`Budget`]/seed triple),
//! [`ResponseFrame`] (server → client: answer rows plus execution stats
//! and the answer's error estimate), [`PartialFrame`] (server → client,
//! v2 only: a refining intermediate answer on a progressive request), and
//! [`ErrorFrame`] (server → client: a typed refusal). The encoding is
//! hand-rolled over `Vec<u8>` — no serde, no external crates — and every
//! multi-byte integer is little-endian.
//!
//! `docs/PROTOCOL.md` documents the byte layout with worked examples; a
//! doc-test in this crate encodes those exact frames and asserts the
//! documented bytes, so the document cannot silently drift from the code.
//!
//! ## Versions
//!
//! This build speaks **v3** and still decodes and emits **v1** and **v2**
//! frames ([`encode_frame_at`]); an older peer sees exactly the bytes it
//! always saw. v2 changes three things:
//!
//! - Requests carry a typed [`Budget`] (tag + value) instead of a bare
//!   fraction, plus a flags byte whose bit 0 requests progressive
//!   streaming. A v1 request decodes to `Budget::Fraction`, not
//!   progressive; a declarative budget or a progressive flag *refuses* to
//!   encode at v1 ([`ProtoError::Invalid`]) rather than silently
//!   downgrading.
//! - Responses append the answer's error contract: the planned fraction,
//!   an exactness flag, and per-aggregate confidence intervals.
//! - The [`PartialFrame`] kind exists, and only at v2+.
//!
//! v3 adds the sketch-answered query classes:
//!
//! - Requests carry a [`QuerySpec`] behind a **spec tag** byte: `0` is a
//!   scalar [`Query`] in the v1/v2 grammar, `1` is a [`SketchQuery`]
//!   (`PERCENTILE` / `COUNT(DISTINCT)` / `TOP_K`). A sketch query refuses
//!   to encode at v1/v2.
//! - Responses may append a serialized merged [`AnswerSketch`] behind a
//!   presence byte, so a client can resume merging or re-derive the
//!   scalar answer itself. A response carrying one refuses to encode at
//!   v1/v2 — it answers a request those versions cannot say.
//!
//! ## Forward compatibility
//!
//! - The `version` byte is checked first; a mismatch is
//!   [`ProtoError::BadVersion`] and the server answers with
//!   [`ErrorCode::UnsupportedVersion`] before closing.
//! - Unknown frame kinds and payload tags are errors, not skips — within
//!   one version the grammar is closed.
//! - Decoders ignore bytes past the fields they know *at the end of a
//!   frame body*, so a minor revision may append new trailing fields
//!   without bumping the version; anything structural bumps it (that is
//!   exactly how v2's response meta rides behind v1's last field).

use std::collections::HashMap;

use ps3_core::{AggError, AnswerMeta, Budget, ErrorEstimate, Method, QueryRequest, TableRoute};
use ps3_query::{
    AggExpr, AggFunc, BinOp, Clause, CmpOp, GroupKey, Predicate, Query, QueryAnswer, QuerySpec,
    ScalarExpr, SketchFunc, SketchQuery,
};
use ps3_sketch::codec::{answer_sketch_from_bytes, answer_sketch_to_bytes};
use ps3_sketch::AnswerSketch;
use ps3_storage::ColId;

/// The protocol version this build speaks (the first body byte of every
/// frame). Versions 1 and 2 are still decoded and, via
/// [`encode_frame_at`], emitted.
pub const PROTO_VERSION: u8 = 3;

/// The oldest protocol version this build still speaks.
pub const MIN_PROTO_VERSION: u8 = 1;

/// Default cap on one frame's body length (16 MiB). Both sides refuse
/// larger frames before buffering them, so a corrupt or hostile length
/// prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Nesting bound for decoded predicates/expressions: deeper frames are
/// rejected ([`ProtoError::Invalid`]) instead of overflowing the decoder's
/// stack.
const MAX_DEPTH: u32 = 64;

/// Frame kind byte: request.
const KIND_REQUEST: u8 = 1;
/// Frame kind byte: response.
const KIND_RESPONSE: u8 = 2;
/// Frame kind byte: error.
const KIND_ERROR: u8 = 3;
/// Frame kind byte: partial (progressive) answer. v2 only.
const KIND_PARTIAL: u8 = 4;

/// Request flags byte (v2): bit 0 requests progressive streaming.
const FLAG_PROGRESSIVE: u8 = 1;
/// Budget tag byte (v2): an explicit partition fraction.
const BUDGET_FRACTION: u8 = 0;
/// Budget tag byte (v2): a relative-error target.
const BUDGET_ERROR_TARGET: u8 = 1;
/// Budget tag byte (v2): a latency target in milliseconds.
const BUDGET_LATENCY_TARGET: u8 = 2;

/// Query-spec tag byte (v3): a scalar [`Query`] in the v1/v2 grammar.
const SPEC_SCALAR: u8 = 0;
/// Query-spec tag byte (v3): a [`SketchQuery`].
const SPEC_SKETCH: u8 = 1;
/// Sketch-function tag byte (v3): `PERCENTILE(col, p)`.
const SKETCH_PERCENTILE: u8 = 1;
/// Sketch-function tag byte (v3): `COUNT(DISTINCT col)`.
const SKETCH_DISTINCT: u8 = 2;
/// Sketch-function tag byte (v3): `TOP_K(col, k)`.
const SKETCH_TOPK: u8 = 3;

/// Why a frame failed to decode (or a value refused to encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before a field it promised.
    Truncated,
    /// The version byte differs from [`PROTO_VERSION`].
    BadVersion(u8),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// An unknown tag byte for the named grammar rule.
    BadTag {
        /// Which grammar rule was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A frame's declared body length exceeds the configured cap.
    FrameTooLarge {
        /// The declared body length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A structurally invalid value (empty aggregate list, excessive
    /// nesting, a router-local table id in a wire route, …).
    Invalid(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                )
            }
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            ProtoError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Invalid(what) => write!(f, "invalid frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Typed refusal codes carried by [`ErrorFrame`]. The discriminants are
/// the wire bytes and are frozen for version 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's route named no registered table.
    UnknownTable = 1,
    /// The router's request queue is at capacity — wire-visible
    /// backpressure; retry later.
    QueueFull = 2,
    /// The connection's in-flight quota is exhausted — wire-visible
    /// admission control; wait for an outstanding answer.
    QuotaExhausted = 3,
    /// The router has shut down.
    Shutdown = 4,
    /// The frame failed to decode (the server closes the connection after
    /// sending this — framing is unrecoverable once desynchronized).
    Malformed = 5,
    /// The version byte is one this server does not speak.
    UnsupportedVersion = 6,
    /// The declared frame length exceeds the server's cap.
    FrameTooLarge = 7,
    /// The request panicked while executing.
    Internal = 8,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match b {
            1 => ErrorCode::UnknownTable,
            2 => ErrorCode::QueueFull,
            3 => ErrorCode::QuotaExhausted,
            4 => ErrorCode::Shutdown,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::UnsupportedVersion,
            7 => ErrorCode::FrameTooLarge,
            8 => ErrorCode::Internal,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "error code",
                    tag,
                })
            }
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: execute a query.
    Request(RequestFrame),
    /// Server → client: the answer.
    Response(ResponseFrame),
    /// Server → client: a refining intermediate answer (v2 only).
    Partial(PartialFrame),
    /// Server → client: a typed refusal.
    Error(ErrorFrame),
}

/// A client's query submission.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Target table: `None` routes to a single-table router's default
    /// table, `Some(name)` resolves by name. (Router-local [`TableRoute::Id`]s
    /// are meaningless across a wire and refuse to encode.)
    pub table: Option<String>,
    /// Sampling method.
    pub method: Method,
    /// What to spend: an explicit partition fraction, or a declarative
    /// error/latency target for the server's planner to resolve. v1 can
    /// only carry `Budget::Fraction`.
    pub budget: Budget,
    /// Determinism seed: equal `(table, query, method, planned frac, seed)`
    /// yields bit-identical answers.
    pub seed: u64,
    /// Stream refining partial answers before the final response (v2 only;
    /// served best-effort — cache hits answer in one frame).
    pub progressive: bool,
    /// The query itself: a scalar aggregate query (any version) or a
    /// sketch-class query (v3 only).
    pub query: QuerySpec,
}

impl RequestFrame {
    /// Package a [`QueryRequest`] for the wire. Fails on a
    /// [`TableRoute::Id`] route (ids are router-local).
    pub fn from_request(request_id: u64, req: &QueryRequest) -> Result<RequestFrame, ProtoError> {
        let table = match &req.table {
            TableRoute::Default => None,
            TableRoute::Named(name) => Some(name.clone()),
            TableRoute::Id(_) => {
                return Err(ProtoError::Invalid(
                    "table ids are router-local; route by name over the wire",
                ))
            }
        };
        Ok(RequestFrame {
            request_id,
            table,
            method: req.method,
            budget: req.budget,
            seed: req.seed,
            progressive: req.progressive,
            query: req.query.clone(),
        })
    }

    /// Rebuild the router-side [`QueryRequest`].
    pub fn into_query_request(self) -> QueryRequest {
        let table = match self.table {
            None => TableRoute::Default,
            Some(name) => TableRoute::Named(name),
        };
        QueryRequest {
            query: self.query,
            method: self.method,
            budget: self.budget,
            seed: self.seed,
            table,
            progressive: self.progressive,
        }
    }
}

/// One answer row on the wire: the group key's canonical words and one
/// `f64` per aggregate, bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The group key ([`GroupKey`] words; empty for the global group).
    pub key: Vec<u64>,
    /// Aggregate values, in the query's aggregate order.
    pub values: Vec<f64>,
}

/// A server's answer: rows plus how the answer was produced. Rows are
/// sorted by key words, so equal answers encode to equal bytes.
///
/// The error-contract fields (`planned_frac`, `exact`, `error`) travel
/// only at v2; a v1 decode fills them with the explicit "no signal"
/// values (`planned_frac` 0, not exact, [`ErrorEstimate::no_signal`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// Answer rows, sorted by group key.
    pub rows: Vec<WireRow>,
    /// How many partitions were read to produce the answer.
    pub partitions_read: u32,
    /// Picker latency in milliseconds (0 for trivial baselines).
    pub picker_ms: f64,
    /// The fraction the answer was actually executed at (after planning).
    pub planned_frac: f64,
    /// True when the answer is exact, not an estimate.
    pub exact: bool,
    /// Per-aggregate confidence intervals and the summary relative error.
    pub error: ErrorEstimate,
    /// The merged answer sketch behind a sketch-class answer (v3 only) —
    /// `None` for scalar answers and on decodes from older peers.
    pub sketch: Option<AnswerSketch>,
}

impl ResponseFrame {
    /// Package an executed outcome for the wire.
    pub fn from_outcome(request_id: u64, outcome: &ps3_core::AnswerOutcome) -> ResponseFrame {
        let mut rows: Vec<WireRow> = outcome
            .answer
            .groups
            .iter()
            .map(|(key, values)| WireRow {
                key: key.0.to_vec(),
                values: values.clone(),
            })
            .collect();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        ResponseFrame {
            request_id,
            rows,
            partitions_read: outcome.meta.partitions_read,
            picker_ms: outcome.meta.picker_ms,
            planned_frac: outcome.meta.planned_frac,
            exact: outcome.meta.exact,
            error: outcome.meta.error_estimate.clone(),
            sketch: outcome.sketch.clone(),
        }
    }

    /// Rebuild the answer map (the inverse of [`ResponseFrame::from_outcome`]
    /// up to row order, which [`QueryAnswer`]'s map erases anyway).
    pub fn to_answer(&self) -> QueryAnswer {
        let mut groups = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            groups.insert(
                GroupKey(row.key.clone().into_boxed_slice()),
                row.values.clone(),
            );
        }
        QueryAnswer { groups }
    }

    /// Rebuild the answer's metadata block for the client-side
    /// [`AnswerMeta`] mirror of the router's outcome.
    pub fn to_meta(&self) -> AnswerMeta {
        AnswerMeta {
            partitions_read: self.partitions_read,
            picker_ms: self.picker_ms,
            error_estimate: self.error.clone(),
            planned_frac: self.planned_frac,
            exact: self.exact,
        }
    }
}

/// A refining intermediate answer on a progressive request (v2 only).
///
/// Zero or more partials precede the final [`ResponseFrame`]; each covers
/// strictly more partitions than the last, and the final response is
/// bit-identical to what a non-progressive request would have returned.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// 0-based position of this partial in the stream.
    pub seq: u32,
    /// Partitions combined into this estimate so far.
    pub partitions_done: u32,
    /// Partitions the full answer will combine (always `> partitions_done`
    /// — the last batch arrives as the final response, never as a partial).
    pub partitions_total: u32,
    /// The intermediate answer's rows, sorted by group key.
    pub rows: Vec<WireRow>,
    /// Summary relative error of the intermediate estimate (NaN when the
    /// prefix is too small to estimate from).
    pub rel_err: f64,
}

impl PartialFrame {
    /// Package a progress update for the wire.
    pub fn from_update(request_id: u64, update: &ps3_core::ProgressUpdate) -> PartialFrame {
        let mut rows: Vec<WireRow> = update
            .answer
            .groups
            .iter()
            .map(|(key, values)| WireRow {
                key: key.0.to_vec(),
                values: values.clone(),
            })
            .collect();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        PartialFrame {
            request_id,
            seq: update.seq,
            partitions_done: update.partitions_done,
            partitions_total: update.partitions_total,
            rows,
            rel_err: update.rel_err,
        }
    }

    /// Rebuild the intermediate answer map.
    pub fn to_answer(&self) -> QueryAnswer {
        let mut groups = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            groups.insert(
                GroupKey(row.key.clone().into_boxed_slice()),
                row.values.clone(),
            );
        }
        QueryAnswer { groups }
    }
}

/// A server's typed refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Echo of the request's correlation id (0 when the failure predates
    /// one, e.g. an undecodable frame).
    pub request_id: u64,
    /// What went wrong.
    pub code: ErrorCode,
    /// Human-readable detail (never required for program logic).
    pub message: String,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append little-endian primitives to a byte buffer. Length-carrying
/// fields go through the checked `str`/`u16_len`/`u32_len` helpers — a
/// value too large for its length field is an [`ProtoError::Invalid`]
/// error, never a silent modular truncation (which would emit a frame
/// that decodes to a *different* value).
///
/// Borrows the destination rather than owning it so encoders can append
/// into a caller-reused buffer ([`encode_frame_at_into`]) — the serving
/// hot path encodes thousands of frames per second and must not allocate
/// one `Vec` each.
struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn u16_len(&mut self, n: usize, what: &'static str) -> Result<(), ProtoError> {
        match u16::try_from(n) {
            Ok(v) => {
                self.u16(v);
                Ok(())
            }
            Err(_) => Err(ProtoError::Invalid(what)),
        }
    }
    fn u32_len(&mut self, n: usize, what: &'static str) -> Result<(), ProtoError> {
        match u32::try_from(n) {
            Ok(v) => {
                self.u32(v);
                Ok(())
            }
            Err(_) => Err(ProtoError::Invalid(what)),
        }
    }
    fn str(&mut self, s: &str) -> Result<(), ProtoError> {
        self.u16_len(s.len(), "wire strings cap at 64 KiB")?;
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn encode_scalar(w: &mut Writer<'_>, e: &ScalarExpr) {
    match e {
        ScalarExpr::Column(c) => {
            w.u8(1);
            w.u32(c.index() as u32);
        }
        ScalarExpr::Literal(x) => {
            w.u8(2);
            w.f64(*x);
        }
        ScalarExpr::BinOp(op, l, r) => {
            w.u8(3);
            w.u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
            });
            encode_scalar(w, l);
            encode_scalar(w, r);
        }
    }
}

fn encode_predicate(w: &mut Writer<'_>, p: &Predicate) -> Result<(), ProtoError> {
    match p {
        Predicate::Clause(Clause::Cmp { col, op, value }) => {
            w.u8(1);
            w.u32(col.index() as u32);
            w.u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Ne => 1,
                CmpOp::Lt => 2,
                CmpOp::Le => 3,
                CmpOp::Gt => 4,
                CmpOp::Ge => 5,
            });
            w.f64(*value);
        }
        Predicate::Clause(Clause::In {
            col,
            values,
            negated,
        }) => {
            w.u8(2);
            w.u32(col.index() as u32);
            w.u8(u8::from(*negated));
            w.u16_len(values.len(), "IN lists cap at 65535 values")?;
            for v in values {
                w.str(v)?;
            }
        }
        Predicate::Clause(Clause::Contains {
            col,
            needle,
            negated,
        }) => {
            w.u8(3);
            w.u32(col.index() as u32);
            w.u8(u8::from(*negated));
            w.str(needle)?;
        }
        Predicate::And(ps) => {
            w.u8(4);
            w.u16_len(ps.len(), "AND arms cap at 65535")?;
            for q in ps {
                encode_predicate(w, q)?;
            }
        }
        Predicate::Or(ps) => {
            w.u8(5);
            w.u16_len(ps.len(), "OR arms cap at 65535")?;
            for q in ps {
                encode_predicate(w, q)?;
            }
        }
        Predicate::Not(q) => {
            w.u8(6);
            encode_predicate(w, q)?;
        }
    }
    Ok(())
}

fn encode_query(w: &mut Writer<'_>, q: &Query) -> Result<(), ProtoError> {
    w.u16_len(q.aggregates.len(), "aggregate lists cap at 65535")?;
    for agg in &q.aggregates {
        w.u8(match agg.func {
            AggFunc::Sum => 0,
            AggFunc::Count => 1,
            AggFunc::Avg => 2,
        });
        encode_scalar(w, &agg.expr);
        match &agg.condition {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                encode_predicate(w, p)?;
            }
        }
    }
    match &q.predicate {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            encode_predicate(w, p)?;
        }
    }
    w.u16_len(q.group_by.len(), "GROUP BY lists cap at 65535")?;
    for c in &q.group_by {
        w.u32(c.index() as u32);
    }
    Ok(())
}

/// The v3 sketch-query grammar: `[func_tag: u8][params…][col: u32]
/// [has_pred: u8][predicate]`. Percentile carries its fraction as `f64`
/// bits; top-k carries `k` as a `u32`; distinct has no parameters.
fn encode_sketch_query(w: &mut Writer<'_>, q: &SketchQuery) -> Result<(), ProtoError> {
    match q.func {
        SketchFunc::Percentile(p) => {
            w.u8(SKETCH_PERCENTILE);
            w.f64(p);
        }
        SketchFunc::Distinct => w.u8(SKETCH_DISTINCT),
        SketchFunc::TopK(k) => {
            w.u8(SKETCH_TOPK);
            w.u32(k);
        }
    }
    w.u32(q.col.index() as u32);
    match &q.predicate {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            encode_predicate(w, p)?;
        }
    }
    Ok(())
}

/// The v3 query-spec dispatch: a tag byte then the scalar or sketch
/// grammar. Before v3 only scalar queries exist and the tag byte does not
/// travel; sketch queries refuse to encode there.
fn encode_query_spec(w: &mut Writer<'_>, spec: &QuerySpec, version: u8) -> Result<(), ProtoError> {
    if version >= 3 {
        match spec {
            QuerySpec::Scalar(q) => {
                w.u8(SPEC_SCALAR);
                encode_query(w, q)
            }
            QuerySpec::Sketch(q) => {
                w.u8(SPEC_SKETCH);
                encode_sketch_query(w, q)
            }
        }
    } else {
        match spec {
            QuerySpec::Scalar(q) => encode_query(w, q),
            QuerySpec::Sketch(_) => Err(ProtoError::Invalid("sketch queries need protocol v3")),
        }
    }
}

fn method_byte(m: Method) -> u8 {
    match m {
        Method::Random => 0,
        Method::RandomFilter => 1,
        Method::Lss => 2,
        Method::Ps3 => 3,
    }
}

/// The shared row-block grammar of response and partial frames:
/// `[n_aggs: u16][n_rows: u32]` then per row `[key_words: u16][key…][values…]`.
fn encode_rows(w: &mut Writer<'_>, rows: &[WireRow]) -> Result<(), ProtoError> {
    let n_aggs = rows.first().map_or(0, |r| r.values.len());
    w.u16_len(n_aggs, "aggregate lists cap at 65535")?;
    w.u32_len(rows.len(), "answers cap at 2^32-1 rows")?;
    for row in rows {
        w.u16_len(row.key.len(), "group keys cap at 65535 words")?;
        for word in &row.key {
            w.u64(*word);
        }
        debug_assert_eq!(row.values.len(), n_aggs, "ragged answer rows");
        for v in &row.values {
            w.f64(*v);
        }
    }
    Ok(())
}

/// The v2 response meta block: `[planned_frac: f64][exact: u8]
/// [rel_err: f64][n_aggs: u16]` then per aggregate
/// `[ci_half_width: f64][rel_err: f64]`.
fn encode_response_meta(w: &mut Writer<'_>, resp: &ResponseFrame) -> Result<(), ProtoError> {
    w.f64(resp.planned_frac);
    w.u8(u8::from(resp.exact));
    w.f64(resp.error.rel_err);
    w.u16_len(resp.error.per_agg.len(), "aggregate lists cap at 65535")?;
    for agg in &resp.error.per_agg {
        w.f64(agg.ci_half_width);
        w.f64(agg.rel_err);
    }
    Ok(())
}

/// Encode a frame into its full wire form: `[body_len: u32 LE][body]`.
/// Shorthand for [`encode_frame_at`] at [`PROTO_VERSION`].
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, ProtoError> {
    encode_frame_at(frame, PROTO_VERSION)
}

/// Encode a frame at an explicit protocol version — what a server uses to
/// answer a v1 client in its own dialect.
///
/// Fails ([`ProtoError::Invalid`]) on values that do not fit their length
/// fields (a >64 KiB string, a >65535-entry list) rather than truncating
/// them into a frame that would decode to something else, and on v2-only
/// content at v1: a declarative [`Budget`], a progressive request, or a
/// [`PartialFrame`] refuse to downgrade.
pub fn encode_frame_at(frame: &Frame, version: u8) -> Result<Vec<u8>, ProtoError> {
    let mut wire = Vec::with_capacity(64);
    encode_frame_at_into(frame, version, &mut wire)?;
    Ok(wire)
}

/// [`encode_frame_at`] into a caller-owned buffer: appends the full wire
/// form (`[body_len: u32 LE][body]`) to `out` without allocating.
///
/// On error `out` is restored to its original length — a refused frame
/// leaves no partial bytes behind, so the buffer can hold a queue of
/// already-encoded frames. This is the serving path's per-connection
/// encode primitive; `encode_frame_at` is the convenience wrapper that
/// pays one allocation for callers without a buffer to reuse.
pub fn encode_frame_at_into(
    frame: &Frame,
    version: u8,
    out: &mut Vec<u8>,
) -> Result<(), ProtoError> {
    let start = out.len();
    match encode_frame_body(frame, version, out) {
        Ok(()) => {
            let body_len = out.len() - start - 4;
            let Ok(body_len) = u32::try_from(body_len) else {
                out.truncate(start);
                return Err(ProtoError::Invalid("frame bodies cap at 2^32-1 bytes"));
            };
            out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
            Ok(())
        }
        Err(e) => {
            out.truncate(start);
            Err(e)
        }
    }
}

/// Append `[len placeholder][body]` to `out`; the caller patches the
/// length and rolls back on error.
fn encode_frame_body(frame: &Frame, version: u8, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    out.extend_from_slice(&[0u8; 4]);
    let mut w = Writer(out);
    w.u8(version);
    match frame {
        Frame::Request(req) => {
            w.u8(KIND_REQUEST);
            w.u64(req.request_id);
            match &req.table {
                None => w.u8(0),
                Some(name) => {
                    w.u8(1);
                    w.str(name)?;
                }
            }
            w.u8(method_byte(req.method));
            if version == 1 {
                let Budget::Fraction(frac) = req.budget else {
                    return Err(ProtoError::Invalid("declarative budgets need protocol v2"));
                };
                if req.progressive {
                    return Err(ProtoError::Invalid(
                        "progressive streaming needs protocol v2",
                    ));
                }
                w.f64(frac);
            } else {
                let (tag, value) = match req.budget {
                    Budget::Fraction(f) => (BUDGET_FRACTION, f),
                    Budget::ErrorTarget { rel_err } => (BUDGET_ERROR_TARGET, rel_err),
                    Budget::LatencyTarget { ms } => (BUDGET_LATENCY_TARGET, ms),
                };
                w.u8(tag);
                w.f64(value);
            }
            w.u64(req.seed);
            if version >= 2 {
                w.u8(if req.progressive { FLAG_PROGRESSIVE } else { 0 });
            }
            encode_query_spec(&mut w, &req.query, version)?;
        }
        Frame::Response(resp) => {
            w.u8(KIND_RESPONSE);
            w.u64(resp.request_id);
            encode_rows(&mut w, &resp.rows)?;
            w.u32(resp.partitions_read);
            w.f64(resp.picker_ms);
            if version >= 2 {
                encode_response_meta(&mut w, resp)?;
            }
            if version >= 3 {
                match &resp.sketch {
                    None => w.u8(0),
                    Some(s) => {
                        w.u8(1);
                        let blob = answer_sketch_to_bytes(s);
                        w.u32_len(blob.len(), "answer sketches cap at 2^32-1 bytes")?;
                        w.0.extend_from_slice(&blob);
                    }
                }
            } else if resp.sketch.is_some() {
                return Err(ProtoError::Invalid("sketch answers need protocol v3"));
            }
        }
        Frame::Partial(part) => {
            if version < 2 {
                return Err(ProtoError::Invalid("partial frames need protocol v2"));
            }
            w.u8(KIND_PARTIAL);
            w.u64(part.request_id);
            w.u32(part.seq);
            w.u32(part.partitions_done);
            w.u32(part.partitions_total);
            encode_rows(&mut w, &part.rows)?;
            w.f64(part.rel_err);
        }
        Frame::Error(err) => {
            w.u8(KIND_ERROR);
            w.u64(err.request_id);
            w.u8(err.code as u8);
            w.str(&err.message)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over one frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }
}

fn decode_scalar(r: &mut Reader, depth: u32) -> Result<ScalarExpr, ProtoError> {
    if depth > MAX_DEPTH {
        return Err(ProtoError::Invalid("expression nested too deeply"));
    }
    Ok(match r.u8()? {
        1 => ScalarExpr::Column(ColId(r.u32()? as usize)),
        2 => ScalarExpr::Literal(r.f64()?),
        3 => {
            let op = match r.u8()? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "binary operator",
                        tag,
                    })
                }
            };
            let l = decode_scalar(r, depth + 1)?;
            let right = decode_scalar(r, depth + 1)?;
            ScalarExpr::BinOp(op, Box::new(l), Box::new(right))
        }
        tag => {
            return Err(ProtoError::BadTag {
                what: "scalar expression",
                tag,
            })
        }
    })
}

fn decode_predicate(r: &mut Reader, depth: u32) -> Result<Predicate, ProtoError> {
    if depth > MAX_DEPTH {
        return Err(ProtoError::Invalid("predicate nested too deeply"));
    }
    Ok(match r.u8()? {
        1 => {
            let col = ColId(r.u32()? as usize);
            let op = match r.u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "comparison operator",
                        tag,
                    })
                }
            };
            Predicate::Clause(Clause::Cmp {
                col,
                op,
                value: r.f64()?,
            })
        }
        2 => {
            let col = ColId(r.u32()? as usize);
            let negated = r.u8()? != 0;
            let n = r.u16()? as usize;
            let values = (0..n).map(|_| r.str()).collect::<Result<_, _>>()?;
            Predicate::Clause(Clause::In {
                col,
                values,
                negated,
            })
        }
        3 => {
            let col = ColId(r.u32()? as usize);
            let negated = r.u8()? != 0;
            Predicate::Clause(Clause::Contains {
                col,
                needle: r.str()?,
                negated,
            })
        }
        4 => {
            let n = r.u16()? as usize;
            Predicate::And(
                (0..n)
                    .map(|_| decode_predicate(r, depth + 1))
                    .collect::<Result<_, _>>()?,
            )
        }
        5 => {
            let n = r.u16()? as usize;
            Predicate::Or(
                (0..n)
                    .map(|_| decode_predicate(r, depth + 1))
                    .collect::<Result<_, _>>()?,
            )
        }
        6 => Predicate::Not(Box::new(decode_predicate(r, depth + 1)?)),
        tag => {
            return Err(ProtoError::BadTag {
                what: "predicate",
                tag,
            })
        }
    })
}

fn decode_query(r: &mut Reader) -> Result<Query, ProtoError> {
    let n_aggs = r.u16()? as usize;
    if n_aggs == 0 {
        return Err(ProtoError::Invalid("query needs at least one aggregate"));
    }
    let mut aggregates = Vec::with_capacity(n_aggs.min(1024));
    for _ in 0..n_aggs {
        let func = match r.u8()? {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Avg,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "aggregate function",
                    tag,
                })
            }
        };
        let expr = decode_scalar(r, 0)?;
        let condition = match r.u8()? {
            0 => None,
            1 => Some(decode_predicate(r, 0)?),
            tag => {
                return Err(ProtoError::BadTag {
                    what: "condition presence flag",
                    tag,
                })
            }
        };
        aggregates.push(AggExpr {
            func,
            expr,
            condition,
        });
    }
    let predicate = match r.u8()? {
        0 => None,
        1 => Some(decode_predicate(r, 0)?),
        tag => {
            return Err(ProtoError::BadTag {
                what: "predicate presence flag",
                tag,
            })
        }
    };
    let n_group = r.u16()? as usize;
    let group_by = (0..n_group)
        .map(|_| Ok(ColId(r.u32()? as usize)))
        .collect::<Result<_, ProtoError>>()?;
    Ok(Query {
        aggregates,
        predicate,
        group_by,
    })
}

fn decode_sketch_query(r: &mut Reader) -> Result<SketchQuery, ProtoError> {
    let func = match r.u8()? {
        SKETCH_PERCENTILE => {
            let p = r.f64()?;
            // Validate before construction: the builder asserts, and a
            // hostile frame must never panic the decoder.
            if !(0.0..=1.0).contains(&p) {
                return Err(ProtoError::Invalid("percentile fraction must be in [0, 1]"));
            }
            SketchFunc::Percentile(p)
        }
        SKETCH_DISTINCT => SketchFunc::Distinct,
        SKETCH_TOPK => {
            let k = r.u32()?;
            if k == 0 {
                return Err(ProtoError::Invalid("TOP_K needs k >= 1"));
            }
            SketchFunc::TopK(k)
        }
        tag => {
            return Err(ProtoError::BadTag {
                what: "sketch function",
                tag,
            })
        }
    };
    let col = ColId(r.u32()? as usize);
    let predicate = match r.u8()? {
        0 => None,
        1 => Some(decode_predicate(r, 0)?),
        tag => {
            return Err(ProtoError::BadTag {
                what: "predicate presence flag",
                tag,
            })
        }
    };
    Ok(SketchQuery {
        func,
        col,
        predicate,
    })
}

fn decode_query_spec(r: &mut Reader, version: u8) -> Result<QuerySpec, ProtoError> {
    if version >= 3 {
        match r.u8()? {
            SPEC_SCALAR => Ok(QuerySpec::Scalar(decode_query(r)?)),
            SPEC_SKETCH => Ok(QuerySpec::Sketch(decode_sketch_query(r)?)),
            tag => Err(ProtoError::BadTag {
                what: "query spec",
                tag,
            }),
        }
    } else {
        Ok(QuerySpec::Scalar(decode_query(r)?))
    }
}

fn decode_rows(r: &mut Reader) -> Result<Vec<WireRow>, ProtoError> {
    let n_aggs = r.u16()? as usize;
    let n_rows = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(4096));
    for _ in 0..n_rows {
        let key_words = r.u16()? as usize;
        let key = (0..key_words).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let values = (0..n_aggs).map(|_| r.f64()).collect::<Result<_, _>>()?;
        rows.push(WireRow { key, values });
    }
    Ok(rows)
}

/// Decode one frame *body* (the bytes after the 4-byte length prefix).
/// Both protocol versions are accepted; a v1 body yields the same [`Frame`]
/// type with the v2-only fields at their explicit "absent" values.
/// Trailing bytes past the known grammar are ignored (see the module docs
/// on forward compatibility).
pub fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = Reader { buf: body, pos: 0 };
    let version = r.u8()?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let kind = r.u8()?;
    let request_id = r.u64()?;
    match kind {
        KIND_REQUEST => {
            let table = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "table route",
                        tag,
                    })
                }
            };
            let method = match r.u8()? {
                0 => Method::Random,
                1 => Method::RandomFilter,
                2 => Method::Lss,
                3 => Method::Ps3,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "method",
                        tag,
                    })
                }
            };
            let budget = if version == 1 {
                Budget::Fraction(r.f64()?)
            } else {
                let tag = r.u8()?;
                let value = r.f64()?;
                match tag {
                    BUDGET_FRACTION => Budget::Fraction(value),
                    BUDGET_ERROR_TARGET => Budget::ErrorTarget { rel_err: value },
                    BUDGET_LATENCY_TARGET => Budget::LatencyTarget { ms: value },
                    tag => {
                        return Err(ProtoError::BadTag {
                            what: "budget",
                            tag,
                        })
                    }
                }
            };
            let seed = r.u64()?;
            let progressive = if version >= 2 {
                let flags = r.u8()?;
                if flags & !FLAG_PROGRESSIVE != 0 {
                    return Err(ProtoError::Invalid("unknown request flag bits"));
                }
                flags & FLAG_PROGRESSIVE != 0
            } else {
                false
            };
            let query = decode_query_spec(&mut r, version)?;
            Ok(Frame::Request(RequestFrame {
                request_id,
                table,
                method,
                budget,
                seed,
                progressive,
                query,
            }))
        }
        KIND_RESPONSE => {
            let rows = decode_rows(&mut r)?;
            let partitions_read = r.u32()?;
            let picker_ms = r.f64()?;
            let (planned_frac, exact, error) = if version >= 2 {
                let planned_frac = r.f64()?;
                let exact = match r.u8()? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(ProtoError::BadTag {
                            what: "exactness flag",
                            tag,
                        })
                    }
                };
                let rel_err = r.f64()?;
                let n = r.u16()? as usize;
                let per_agg = (0..n)
                    .map(|_| {
                        Ok(AggError {
                            ci_half_width: r.f64()?,
                            rel_err: r.f64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                (planned_frac, exact, ErrorEstimate { per_agg, rel_err })
            } else {
                (0.0, false, ErrorEstimate::no_signal(0))
            };
            let sketch = if version >= 3 {
                match r.u8()? {
                    0 => None,
                    1 => {
                        let len = r.u32()? as usize;
                        let blob = r.take(len)?;
                        Some(
                            answer_sketch_from_bytes(blob)
                                .map_err(|_| ProtoError::Invalid("undecodable answer sketch"))?,
                        )
                    }
                    tag => {
                        return Err(ProtoError::BadTag {
                            what: "sketch presence flag",
                            tag,
                        })
                    }
                }
            } else {
                None
            };
            Ok(Frame::Response(ResponseFrame {
                request_id,
                rows,
                partitions_read,
                picker_ms,
                planned_frac,
                exact,
                error,
                sketch,
            }))
        }
        KIND_PARTIAL => {
            if version < 2 {
                return Err(ProtoError::BadKind(kind));
            }
            let seq = r.u32()?;
            let partitions_done = r.u32()?;
            let partitions_total = r.u32()?;
            let rows = decode_rows(&mut r)?;
            Ok(Frame::Partial(PartialFrame {
                request_id,
                seq,
                partitions_done,
                partitions_total,
                rows,
                rel_err: r.f64()?,
            }))
        }
        KIND_ERROR => {
            let code = ErrorCode::from_byte(r.u8()?)?;
            Ok(Frame::Error(ErrorFrame {
                request_id,
                code,
                message: r.str()?,
            }))
        }
        kind => Err(ProtoError::BadKind(kind)),
    }
}

/// Incremental frame assembly over a byte stream.
///
/// Feed raw socket reads in with [`FrameBuffer::push`], then pull complete
/// frames with [`FrameBuffer::next_frame`] until it yields `Ok(None)`.
/// The length prefix is validated against the buffer's cap *before* the
/// body is awaited, so one bad prefix can never commit the peer to
/// buffering gigabytes.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames (compacted lazily).
    consumed: usize,
    max_frame: u32,
    /// Version byte of the most recently yielded frame.
    last_version: Option<u8>,
}

impl FrameBuffer {
    /// A buffer accepting bodies up to `max_frame` bytes.
    pub fn new(max_frame: u32) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            consumed: 0,
            max_frame,
            last_version: None,
        }
    }

    /// The version byte of the last frame [`Self::next_frame`] yielded —
    /// how a server learns which dialect a connection speaks, so it can
    /// answer in kind.
    pub fn last_version(&self) -> Option<u8> {
        self.last_version
    }

    /// Append raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: yielded-frame bytes at the front are dead.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one has fully arrived. Errors
    /// are unrecoverable for the connection: framing is lost once a body
    /// fails to parse or a length prefix lies.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(pending[..4].try_into().unwrap());
        if body_len > self.max_frame {
            return Err(ProtoError::FrameTooLarge {
                len: body_len,
                max: self.max_frame,
            });
        }
        let total = 4 + body_len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = decode_body(&pending[4..total])?;
        self.last_version = Some(pending[4]);
        self.consumed += total;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed by a yielded frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_core::Method;

    fn sample_query() -> Query {
        Query::new(
            vec![
                AggExpr::sum(ScalarExpr::col(ColId(0)).mul(ScalarExpr::col(ColId(1)))),
                AggExpr::count(),
                AggExpr::avg(ScalarExpr::col(ColId(1)).add(ScalarExpr::Literal(2.5))).filtered(
                    Predicate::Clause(Clause::Cmp {
                        col: ColId(0),
                        op: CmpOp::Ge,
                        value: -3.25,
                    }),
                ),
            ],
            Some(Predicate::And(vec![
                Predicate::Or(vec![
                    Predicate::Clause(Clause::Cmp {
                        col: ColId(1),
                        op: CmpOp::Lt,
                        value: 9.5,
                    }),
                    Predicate::Clause(Clause::In {
                        col: ColId(2),
                        values: vec!["aa".into(), "bb".into()],
                        negated: true,
                    }),
                ]),
                Predicate::Not(Box::new(Predicate::Clause(Clause::Contains {
                    col: ColId(2),
                    needle: "x".into(),
                    negated: false,
                }))),
            ])),
            vec![ColId(2), ColId(0)],
        )
    }

    #[test]
    fn request_frames_roundtrip_bit_exactly() {
        let frame = Frame::Request(RequestFrame {
            request_id: 0xDEAD_BEEF_0BAD_F00D,
            table: Some("lineitem".into()),
            method: Method::Ps3,
            budget: Budget::Fraction(0.125),
            seed: 42,
            progressive: true,
            query: sample_query().into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        let decoded = decode_body(&wire[4..]).expect("decode");
        assert_eq!(decoded, frame);
        // The length prefix covers exactly the body.
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4);
    }

    #[test]
    fn declarative_budgets_roundtrip_at_v2() {
        for budget in [
            Budget::ErrorTarget { rel_err: 0.05 },
            Budget::LatencyTarget { ms: 4.5 },
            Budget::Fraction(0.3),
        ] {
            let frame = Frame::Request(RequestFrame {
                request_id: 8,
                table: None,
                method: Method::Ps3,
                budget,
                seed: 3,
                progressive: false,
                query: sample_query().into(),
            });
            let wire = encode_frame(&frame).expect("encodes");
            assert_eq!(decode_body(&wire[4..]).expect("decode"), frame);
        }
    }

    #[test]
    fn v1_requests_decode_to_fraction_budgets_and_cost_two_fewer_bytes() {
        let frame = Frame::Request(RequestFrame {
            request_id: 11,
            table: Some("t".into()),
            method: Method::Lss,
            budget: Budget::Fraction(0.25),
            seed: 9,
            progressive: false,
            query: sample_query().into(),
        });
        let v1 = encode_frame_at(&frame, 1).expect("fraction budgets encode at v1");
        assert_eq!(v1[4], 1, "version byte");
        let decoded = decode_body(&v1[4..]).expect("decode v1");
        assert_eq!(decoded, frame, "a v1 request is a non-progressive fraction");
        // v2 spends exactly two extra bytes: the budget tag and the flags.
        let v2 = encode_frame_at(&frame, 2).expect("encodes at v2");
        assert_eq!(v2.len(), v1.len() + 2);
    }

    #[test]
    fn v2_only_content_refuses_to_encode_at_v1() {
        let mut req = RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            budget: Budget::ErrorTarget { rel_err: 0.05 },
            seed: 1,
            progressive: false,
            query: sample_query().into(),
        };
        assert!(matches!(
            encode_frame_at(&Frame::Request(req.clone()), 1),
            Err(ProtoError::Invalid(_)),
        ));
        req.budget = Budget::Fraction(0.5);
        req.progressive = true;
        assert!(matches!(
            encode_frame_at(&Frame::Request(req), 1),
            Err(ProtoError::Invalid(_)),
        ));
        let partial = Frame::Partial(PartialFrame {
            request_id: 1,
            seq: 0,
            partitions_done: 1,
            partitions_total: 4,
            rows: vec![],
            rel_err: f64::NAN,
        });
        assert!(matches!(
            encode_frame_at(&partial, 1),
            Err(ProtoError::Invalid(_)),
        ));
        // And nobody can ask for a version this build does not speak.
        assert_eq!(encode_frame_at(&partial, 4), Err(ProtoError::BadVersion(4)),);
    }

    fn sample_sketch_queries() -> Vec<SketchQuery> {
        let pred = Predicate::Clause(Clause::Cmp {
            col: ColId(1),
            op: CmpOp::Lt,
            value: 9.5,
        });
        vec![
            SketchQuery::percentile(ColId(0), 0.5),
            SketchQuery::percentile(ColId(0), 1.0).filtered(pred.clone()),
            SketchQuery::distinct(ColId(2)),
            SketchQuery::top_k(ColId(2), 5).filtered(pred),
        ]
    }

    #[test]
    fn sketch_requests_roundtrip_at_v3_and_refuse_older_versions() {
        for (i, sq) in sample_sketch_queries().into_iter().enumerate() {
            let frame = Frame::Request(RequestFrame {
                request_id: i as u64,
                table: Some("t".into()),
                method: Method::Ps3,
                budget: Budget::Fraction(0.25),
                seed: 7,
                progressive: false,
                query: sq.into(),
            });
            let wire = encode_frame(&frame).expect("encodes at v3");
            assert_eq!(wire[4], 3, "version byte");
            assert_eq!(decode_body(&wire[4..]).expect("decode"), frame);
            // A sketch query cannot be said in the v1/v2 grammar.
            for version in [1, 2] {
                assert_eq!(
                    encode_frame_at(&frame, version),
                    Err(ProtoError::Invalid("sketch queries need protocol v3")),
                );
            }
        }
    }

    #[test]
    fn scalar_requests_at_v3_cost_one_spec_tag_byte_over_v2() {
        let frame = Frame::Request(RequestFrame {
            request_id: 4,
            table: None,
            method: Method::Lss,
            budget: Budget::Fraction(0.5),
            seed: 2,
            progressive: false,
            query: sample_query().into(),
        });
        let v2 = encode_frame_at(&frame, 2).expect("encodes at v2");
        let v3 = encode_frame_at(&frame, 3).expect("encodes at v3");
        assert_eq!(v3.len(), v2.len() + 1);
        assert_eq!(decode_body(&v2[4..]).expect("decode v2"), frame);
        assert_eq!(decode_body(&v3[4..]).expect("decode v3"), frame);
    }

    #[test]
    fn sketch_answers_roundtrip_at_v3_and_refuse_older_versions() {
        let mut q = ps3_sketch::QuantileSketch::new();
        for i in 0..200 {
            q.insert(f64::from(i) * 0.5);
        }
        let frame = ResponseFrame {
            request_id: 9,
            rows: vec![WireRow {
                key: vec![],
                values: vec![49.75],
            }],
            partitions_read: 4,
            picker_ms: 0.0,
            planned_frac: 1.0,
            exact: false,
            error: ErrorEstimate::no_signal(1),
            sketch: Some(AnswerSketch::Quantile(q)),
        };
        let wire = encode_frame(&Frame::Response(frame.clone())).expect("encodes");
        let Frame::Response(decoded) = decode_body(&wire[4..]).expect("decode") else {
            panic!("wrong kind");
        };
        // The merged sketch survives the wire bit-exactly.
        assert_eq!(decoded, frame);
        for version in [1, 2] {
            assert_eq!(
                encode_frame_at(&Frame::Response(frame.clone()), version),
                Err(ProtoError::Invalid("sketch answers need protocol v3")),
            );
        }
    }

    #[test]
    fn hostile_sketch_params_are_rejected_not_panics() {
        let frame = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            budget: Budget::Fraction(0.25),
            seed: 1,
            progressive: false,
            query: SketchQuery::percentile(ColId(0), 0.5).into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        // Body: version kind id(8) route method budget(1+8) seed(8) flags
        // → spec tag at body offset 30, func tag at 31, p bits at 32..40.
        let p_off = 4 + 32;
        let mut bad_p = wire.clone();
        bad_p[p_off..p_off + 8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert_eq!(
            decode_body(&bad_p[4..]),
            Err(ProtoError::Invalid("percentile fraction must be in [0, 1]")),
        );
        let mut nan_p = wire.clone();
        nan_p[p_off..p_off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_body(&nan_p[4..]).is_err(), "NaN fraction rejected");

        // A zero k in a TOP_K request is rejected, never asserted on.
        let topk = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            budget: Budget::Fraction(0.25),
            seed: 1,
            progressive: false,
            query: SketchQuery::top_k(ColId(0), 3).into(),
        });
        let wire = encode_frame(&topk).expect("encodes");
        let k_off = 4 + 32;
        let mut bad_k = wire.clone();
        bad_k[k_off..k_off + 4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_body(&bad_k[4..]),
            Err(ProtoError::Invalid("TOP_K needs k >= 1")),
        );

        // Unknown sketch-function and spec tags are closed-grammar errors.
        let mut bad_func = wire.clone();
        bad_func[4 + 31] = 9;
        assert_eq!(
            decode_body(&bad_func[4..]),
            Err(ProtoError::BadTag {
                what: "sketch function",
                tag: 9
            }),
        );
        let mut bad_spec = wire;
        bad_spec[4 + 30] = 7;
        assert_eq!(
            decode_body(&bad_spec[4..]),
            Err(ProtoError::BadTag {
                what: "query spec",
                tag: 7
            }),
        );
    }

    #[test]
    fn corrupt_sketch_blobs_are_invalid_not_panics() {
        let frame = ResponseFrame {
            request_id: 2,
            rows: vec![],
            partitions_read: 1,
            picker_ms: 0.0,
            planned_frac: 1.0,
            exact: true,
            error: ErrorEstimate::exact_for(0),
            sketch: Some(AnswerSketch::Distinct(ps3_sketch::DistinctSketch::new())),
        };
        let wire = encode_frame(&Frame::Response(frame)).expect("encodes");
        // Flip every byte of the body once; each decode errors or succeeds,
        // never panics, and a poisoned blob tag is a typed Invalid.
        for pos in 4..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0xFF;
            let _ = decode_body(&bad[4..]);
        }
        // Truncating inside the blob is Truncated, not a panic.
        for cut in 4..wire.len() {
            let _ = decode_body(&wire[4..cut]);
        }
    }

    #[test]
    fn partial_frames_roundtrip_bit_exactly() {
        let frame = Frame::Partial(PartialFrame {
            request_id: 0xFEED,
            seq: 2,
            partitions_done: 6,
            partitions_total: 8,
            rows: vec![
                WireRow {
                    key: vec![1],
                    values: vec![3.5, -0.0],
                },
                WireRow {
                    key: vec![2],
                    values: vec![f64::NAN, 4.0],
                },
            ],
            rel_err: 0.125,
        });
        let wire = encode_frame(&frame).expect("encodes");
        let Frame::Partial(decoded) = decode_body(&wire[4..]).expect("decode") else {
            panic!("wrong kind");
        };
        assert_eq!(decoded.seq, 2);
        assert_eq!(decoded.partitions_done, 6);
        assert_eq!(decoded.partitions_total, 8);
        assert_eq!(decoded.rel_err, 0.125);
        assert_eq!(decoded.rows[1].values[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(decoded.to_answer().num_groups(), 2);
    }

    #[test]
    fn response_frames_roundtrip_and_rebuild_the_answer() {
        let frame = ResponseFrame {
            request_id: 7,
            rows: vec![
                WireRow {
                    key: vec![],
                    values: vec![1.5, f64::NAN.to_bits() as f64, -0.0],
                },
                WireRow {
                    key: vec![3, 9],
                    values: vec![2.0, 4.0, 8.0],
                },
            ],
            partitions_read: 12,
            picker_ms: 0.25,
            planned_frac: 0.2,
            exact: false,
            error: ErrorEstimate {
                per_agg: vec![
                    AggError {
                        ci_half_width: 3.0,
                        rel_err: 0.1,
                    },
                    AggError::no_signal(),
                    AggError {
                        ci_half_width: 0.5,
                        rel_err: 0.02,
                    },
                ],
                rel_err: 0.1,
            },
            sketch: None,
        };
        let wire = encode_frame(&Frame::Response(frame.clone())).expect("encodes");
        let Frame::Response(decoded) = decode_body(&wire[4..]).expect("decode") else {
            panic!("wrong kind");
        };
        assert_eq!(decoded, frame);
        assert_eq!(decoded.to_meta().error_estimate, frame.error);
        assert_eq!(decoded.to_meta().planned_frac, 0.2);
        let answer = decoded.to_answer();
        assert_eq!(answer.num_groups(), 2);
        assert_eq!(
            answer.groups[&GroupKey(vec![3, 9].into_boxed_slice())],
            vec![2.0, 4.0, 8.0]
        );
    }

    #[test]
    fn v1_responses_drop_the_meta_and_decode_with_no_signal() {
        let frame = ResponseFrame {
            request_id: 7,
            rows: vec![WireRow {
                key: vec![],
                values: vec![1.5],
            }],
            partitions_read: 4,
            picker_ms: 0.5,
            planned_frac: 0.25,
            exact: true,
            error: ErrorEstimate::exact_for(1),
            sketch: None,
        };
        let v1 = encode_frame_at(&Frame::Response(frame.clone()), 1).expect("encodes");
        let v2 = encode_frame_at(&Frame::Response(frame.clone()), 2).expect("encodes");
        assert!(v2.len() > v1.len(), "the meta block rides only at v2");
        let Frame::Response(decoded) = decode_body(&v1[4..]).expect("decode v1") else {
            panic!("wrong kind");
        };
        assert_eq!(decoded.rows, frame.rows);
        assert_eq!(decoded.partitions_read, 4);
        // The error contract did not travel: explicitly absent, not made up.
        assert!(!decoded.exact);
        assert_eq!(decoded.planned_frac, 0.0);
        assert_eq!(decoded.error, ErrorEstimate::no_signal(0));
    }

    #[test]
    fn nan_and_negative_zero_survive_the_wire_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234); // NaN with payload
        let frame = Frame::Response(ResponseFrame {
            request_id: 1,
            rows: vec![WireRow {
                key: vec![(-0.0f64).to_bits()],
                values: vec![weird, -0.0],
            }],
            partitions_read: 0,
            picker_ms: 0.0,
            planned_frac: 0.1,
            exact: false,
            error: ErrorEstimate::no_signal(2),
            sketch: None,
        });
        let wire = encode_frame(&frame).expect("encodes");
        let Frame::Response(decoded) = decode_body(&wire[4..]).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(decoded.rows[0].values[0].to_bits(), weird.to_bits());
        assert_eq!(decoded.rows[0].values[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn error_frames_roundtrip() {
        let frame = Frame::Error(ErrorFrame {
            request_id: 99,
            code: ErrorCode::QueueFull,
            message: "request queue is full".into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        assert_eq!(decode_body(&wire[4..]).unwrap(), frame);
    }

    #[test]
    fn version_and_kind_mismatches_are_rejected() {
        let frame = Frame::Error(ErrorFrame {
            request_id: 0,
            code: ErrorCode::Internal,
            message: String::new(),
        });
        let mut wire = encode_frame(&frame).expect("encodes");
        wire[4] = 9; // version byte
        assert_eq!(decode_body(&wire[4..]), Err(ProtoError::BadVersion(9)));
        let mut wire = encode_frame(&frame).expect("encodes");
        wire[5] = 200; // kind byte
        assert_eq!(decode_body(&wire[4..]), Err(ProtoError::BadKind(200)));
    }

    #[test]
    fn truncated_bodies_and_garbage_tags_error_instead_of_panicking() {
        let frame = Frame::Request(RequestFrame {
            request_id: 5,
            table: None,
            method: Method::Random,
            budget: Budget::Fraction(0.5),
            seed: 1,
            progressive: false,
            query: sample_query().into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        // Every proper prefix of the body either truncates or (rarely, if a
        // prefix happens to end on a field boundary) parses; it never panics.
        for cut in 0..wire.len() - 4 {
            let _ = decode_body(&wire[4..4 + cut]);
        }
        // Garbage at every byte position decodes or errors, never panics.
        for pos in 4..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0xFF;
            let _ = decode_body(&bad[4..]);
        }
    }

    #[test]
    fn frame_buffer_reassembles_across_arbitrary_splits() {
        let frames = [
            Frame::Request(RequestFrame {
                request_id: 1,
                table: Some("t".into()),
                method: Method::Ps3,
                budget: Budget::Fraction(0.1),
                seed: 2,
                progressive: false,
                query: sample_query().into(),
            }),
            Frame::Error(ErrorFrame {
                request_id: 2,
                code: ErrorCode::Shutdown,
                message: "bye".into(),
            }),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f).expect("encodes"));
        }
        // Feed the stream one byte at a time; both frames must reassemble.
        let mut buf = FrameBuffer::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for b in &wire {
            buf.push(std::slice::from_ref(b));
            while let Some(frame) = buf.next_frame().expect("clean stream") {
                got.push(frame);
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn values_too_large_for_their_length_fields_refuse_to_encode() {
        // A needle longer than a u16 length field must error, not truncate
        // into a frame that decodes to a different query.
        let huge = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            budget: Budget::Fraction(0.1),
            seed: 1,
            progressive: false,
            query: Query::new(
                vec![AggExpr::count()],
                Some(Predicate::Clause(Clause::Contains {
                    col: ColId(0),
                    needle: "x".repeat(70_000),
                    negated: false,
                })),
                vec![],
            )
            .into(),
        });
        assert!(matches!(encode_frame(&huge), Err(ProtoError::Invalid(_))));

        let wide_in = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            budget: Budget::Fraction(0.1),
            seed: 1,
            progressive: false,
            query: Query::new(
                vec![AggExpr::count()],
                Some(Predicate::Clause(Clause::In {
                    col: ColId(0),
                    values: (0..70_000).map(|i| i.to_string()).collect(),
                    negated: false,
                })),
                vec![],
            )
            .into(),
        });
        assert!(matches!(
            encode_frame(&wide_in),
            Err(ProtoError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut buf = FrameBuffer::new(1024);
        buf.push(&(4096u32).to_le_bytes());
        assert_eq!(
            buf.next_frame(),
            Err(ProtoError::FrameTooLarge {
                len: 4096,
                max: 1024
            })
        );
    }

    #[test]
    fn trailing_bytes_after_known_fields_are_ignored() {
        // Forward-compat: a future minor revision may append fields.
        let frame = Frame::Error(ErrorFrame {
            request_id: 3,
            code: ErrorCode::Internal,
            message: "m".into(),
        });
        let mut wire = encode_frame(&frame).expect("encodes");
        wire.extend_from_slice(&[0xAB, 0xCD]); // future fields
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_body(&wire[4..]).unwrap(), frame);
    }

    #[test]
    fn request_frame_round_trips_through_query_request() {
        let req = QueryRequest::ps3(sample_query(), 0.1, 1)
            .on_table("events")
            .with_error_target(0.05)
            .progressive();
        let frame = RequestFrame::from_request(17, &req).expect("named routes encode");
        let rebuilt = frame.into_query_request();
        assert_eq!(rebuilt.query, req.query);
        assert_eq!(rebuilt.table, req.table);
        assert_eq!(rebuilt.seed, req.seed);
        assert_eq!(rebuilt.budget, Budget::ErrorTarget { rel_err: 0.05 });
        assert!(rebuilt.progressive);
        // Id routes are router-local and refuse to encode; the refusal is
        // exercised end-to-end in tests/net_serving.rs where a real router
        // can mint one.
    }

    #[test]
    fn frame_buffer_reports_the_peer_version() {
        let frame = Frame::Error(ErrorFrame {
            request_id: 1,
            code: ErrorCode::Shutdown,
            message: String::new(),
        });
        let mut buf = FrameBuffer::new(DEFAULT_MAX_FRAME);
        assert_eq!(buf.last_version(), None, "no frame yet");
        buf.push(&encode_frame_at(&frame, 1).unwrap());
        assert!(buf.next_frame().unwrap().is_some());
        assert_eq!(buf.last_version(), Some(1));
        buf.push(&encode_frame_at(&frame, 2).unwrap());
        assert!(buf.next_frame().unwrap().is_some());
        assert_eq!(buf.last_version(), Some(2));
    }

    #[test]
    fn unknown_budget_tags_and_flag_bits_are_rejected() {
        let frame = Frame::Request(RequestFrame {
            request_id: 5,
            table: None,
            method: Method::Random,
            budget: Budget::Fraction(0.5),
            seed: 1,
            progressive: false,
            query: Query::new(vec![AggExpr::count()], None, vec![]).into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        // Body layout: version, kind, id(8), table tag, method → budget tag
        // at body offset 12, flags at offset 29 (tag + f64 + seed after it).
        let mut bad_tag = wire.clone();
        bad_tag[4 + 12] = 9;
        assert_eq!(
            decode_body(&bad_tag[4..]),
            Err(ProtoError::BadTag {
                what: "budget",
                tag: 9
            }),
        );
        let mut bad_flags = wire;
        bad_flags[4 + 29] = 0x80;
        assert_eq!(
            decode_body(&bad_flags[4..]),
            Err(ProtoError::Invalid("unknown request flag bits")),
        );
    }
}
