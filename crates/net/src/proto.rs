//! The PS3 wire protocol: length-prefixed, versioned binary frames.
//!
//! Everything on the wire is a **frame**: a 4-byte little-endian body
//! length followed by the body, which starts with a fixed header
//! (`version`, `kind`, `request_id`) and continues with a kind-specific
//! payload. Three kinds exist: [`RequestFrame`] (client → server: a table
//! route, a serialized [`Query`], and the method/budget/seed triple),
//! [`ResponseFrame`] (server → client: answer rows plus execution stats),
//! and [`ErrorFrame`] (server → client: a typed refusal). The encoding is
//! hand-rolled over `Vec<u8>` — no serde, no external crates — and every
//! multi-byte integer is little-endian.
//!
//! `docs/PROTOCOL.md` documents the byte layout with worked examples; a
//! doc-test in this crate encodes those exact frames and asserts the
//! documented bytes, so the document cannot silently drift from the code.
//!
//! ## Forward compatibility
//!
//! - The `version` byte is checked first; a mismatch is
//!   [`ProtoError::BadVersion`] and the server answers with
//!   [`ErrorCode::UnsupportedVersion`] before closing.
//! - Unknown frame kinds and payload tags are errors, not skips — within
//!   one version the grammar is closed.
//! - Decoders ignore bytes past the fields they know *at the end of a
//!   frame body*, so a minor revision may append new trailing fields
//!   without bumping the version; anything structural bumps it.

use std::collections::HashMap;

use ps3_core::{Method, QueryRequest, TableRoute};
use ps3_query::{
    AggExpr, AggFunc, BinOp, Clause, CmpOp, GroupKey, Predicate, Query, QueryAnswer, ScalarExpr,
};
use ps3_storage::ColId;

/// The protocol version this build speaks (the first body byte of every
/// frame).
pub const PROTO_VERSION: u8 = 1;

/// Default cap on one frame's body length (16 MiB). Both sides refuse
/// larger frames before buffering them, so a corrupt or hostile length
/// prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Nesting bound for decoded predicates/expressions: deeper frames are
/// rejected ([`ProtoError::Invalid`]) instead of overflowing the decoder's
/// stack.
const MAX_DEPTH: u32 = 64;

/// Frame kind byte: request.
const KIND_REQUEST: u8 = 1;
/// Frame kind byte: response.
const KIND_RESPONSE: u8 = 2;
/// Frame kind byte: error.
const KIND_ERROR: u8 = 3;

/// Why a frame failed to decode (or a value refused to encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before a field it promised.
    Truncated,
    /// The version byte differs from [`PROTO_VERSION`].
    BadVersion(u8),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// An unknown tag byte for the named grammar rule.
    BadTag {
        /// Which grammar rule was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A frame's declared body length exceeds the configured cap.
    FrameTooLarge {
        /// The declared body length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A structurally invalid value (empty aggregate list, excessive
    /// nesting, a router-local table id in a wire route, …).
    Invalid(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            ProtoError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Invalid(what) => write!(f, "invalid frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Typed refusal codes carried by [`ErrorFrame`]. The discriminants are
/// the wire bytes and are frozen for version 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's route named no registered table.
    UnknownTable = 1,
    /// The router's request queue is at capacity — wire-visible
    /// backpressure; retry later.
    QueueFull = 2,
    /// The connection's in-flight quota is exhausted — wire-visible
    /// admission control; wait for an outstanding answer.
    QuotaExhausted = 3,
    /// The router has shut down.
    Shutdown = 4,
    /// The frame failed to decode (the server closes the connection after
    /// sending this — framing is unrecoverable once desynchronized).
    Malformed = 5,
    /// The version byte is one this server does not speak.
    UnsupportedVersion = 6,
    /// The declared frame length exceeds the server's cap.
    FrameTooLarge = 7,
    /// The request panicked while executing.
    Internal = 8,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match b {
            1 => ErrorCode::UnknownTable,
            2 => ErrorCode::QueueFull,
            3 => ErrorCode::QuotaExhausted,
            4 => ErrorCode::Shutdown,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::UnsupportedVersion,
            7 => ErrorCode::FrameTooLarge,
            8 => ErrorCode::Internal,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "error code",
                    tag,
                })
            }
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: execute a query.
    Request(RequestFrame),
    /// Server → client: the answer.
    Response(ResponseFrame),
    /// Server → client: a typed refusal.
    Error(ErrorFrame),
}

/// A client's query submission.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Target table: `None` routes to a single-table router's default
    /// table, `Some(name)` resolves by name. (Router-local [`TableRoute::Id`]s
    /// are meaningless across a wire and refuse to encode.)
    pub table: Option<String>,
    /// Sampling method.
    pub method: Method,
    /// Partition budget as a fraction of the table.
    pub frac: f64,
    /// Determinism seed: equal `(table, query, method, frac, seed)` yields
    /// bit-identical answers.
    pub seed: u64,
    /// The query itself.
    pub query: Query,
}

impl RequestFrame {
    /// Package a [`QueryRequest`] for the wire. Fails on a
    /// [`TableRoute::Id`] route (ids are router-local).
    pub fn from_request(request_id: u64, req: &QueryRequest) -> Result<RequestFrame, ProtoError> {
        let table = match &req.table {
            TableRoute::Default => None,
            TableRoute::Named(name) => Some(name.clone()),
            TableRoute::Id(_) => {
                return Err(ProtoError::Invalid(
                    "table ids are router-local; route by name over the wire",
                ))
            }
        };
        Ok(RequestFrame {
            request_id,
            table,
            method: req.method,
            frac: req.frac,
            seed: req.seed,
            query: req.query.clone(),
        })
    }

    /// Rebuild the router-side [`QueryRequest`].
    pub fn into_query_request(self) -> QueryRequest {
        let table = match self.table {
            None => TableRoute::Default,
            Some(name) => TableRoute::Named(name),
        };
        QueryRequest {
            query: self.query,
            method: self.method,
            frac: self.frac,
            seed: self.seed,
            table,
        }
    }
}

/// One answer row on the wire: the group key's canonical words and one
/// `f64` per aggregate, bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The group key ([`GroupKey`] words; empty for the global group).
    pub key: Vec<u64>,
    /// Aggregate values, in the query's aggregate order.
    pub values: Vec<f64>,
}

/// A server's answer: rows plus how the answer was produced. Rows are
/// sorted by key words, so equal answers encode to equal bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// Answer rows, sorted by group key.
    pub rows: Vec<WireRow>,
    /// How many partitions were read to produce the answer.
    pub partitions_read: u32,
    /// Picker latency in milliseconds (0 for trivial baselines).
    pub picker_ms: f64,
}

impl ResponseFrame {
    /// Package an executed outcome for the wire.
    pub fn from_outcome(request_id: u64, outcome: &ps3_core::AnswerOutcome) -> ResponseFrame {
        let mut rows: Vec<WireRow> = outcome
            .answer
            .groups
            .iter()
            .map(|(key, values)| WireRow {
                key: key.0.to_vec(),
                values: values.clone(),
            })
            .collect();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        ResponseFrame {
            request_id,
            rows,
            partitions_read: outcome.selection.len() as u32,
            picker_ms: outcome.picker_ms,
        }
    }

    /// Rebuild the answer map (the inverse of [`ResponseFrame::from_outcome`]
    /// up to row order, which [`QueryAnswer`]'s map erases anyway).
    pub fn to_answer(&self) -> QueryAnswer {
        let mut groups = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            groups.insert(
                GroupKey(row.key.clone().into_boxed_slice()),
                row.values.clone(),
            );
        }
        QueryAnswer { groups }
    }
}

/// A server's typed refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Echo of the request's correlation id (0 when the failure predates
    /// one, e.g. an undecodable frame).
    pub request_id: u64,
    /// What went wrong.
    pub code: ErrorCode,
    /// Human-readable detail (never required for program logic).
    pub message: String,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append little-endian primitives to a byte buffer. Length-carrying
/// fields go through the checked `str`/`u16_len`/`u32_len` helpers — a
/// value too large for its length field is an [`ProtoError::Invalid`]
/// error, never a silent modular truncation (which would emit a frame
/// that decodes to a *different* value).
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn u16_len(&mut self, n: usize, what: &'static str) -> Result<(), ProtoError> {
        match u16::try_from(n) {
            Ok(v) => {
                self.u16(v);
                Ok(())
            }
            Err(_) => Err(ProtoError::Invalid(what)),
        }
    }
    fn u32_len(&mut self, n: usize, what: &'static str) -> Result<(), ProtoError> {
        match u32::try_from(n) {
            Ok(v) => {
                self.u32(v);
                Ok(())
            }
            Err(_) => Err(ProtoError::Invalid(what)),
        }
    }
    fn str(&mut self, s: &str) -> Result<(), ProtoError> {
        self.u16_len(s.len(), "wire strings cap at 64 KiB")?;
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn encode_scalar(w: &mut Writer, e: &ScalarExpr) {
    match e {
        ScalarExpr::Column(c) => {
            w.u8(1);
            w.u32(c.index() as u32);
        }
        ScalarExpr::Literal(x) => {
            w.u8(2);
            w.f64(*x);
        }
        ScalarExpr::BinOp(op, l, r) => {
            w.u8(3);
            w.u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
            });
            encode_scalar(w, l);
            encode_scalar(w, r);
        }
    }
}

fn encode_predicate(w: &mut Writer, p: &Predicate) -> Result<(), ProtoError> {
    match p {
        Predicate::Clause(Clause::Cmp { col, op, value }) => {
            w.u8(1);
            w.u32(col.index() as u32);
            w.u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Ne => 1,
                CmpOp::Lt => 2,
                CmpOp::Le => 3,
                CmpOp::Gt => 4,
                CmpOp::Ge => 5,
            });
            w.f64(*value);
        }
        Predicate::Clause(Clause::In {
            col,
            values,
            negated,
        }) => {
            w.u8(2);
            w.u32(col.index() as u32);
            w.u8(u8::from(*negated));
            w.u16_len(values.len(), "IN lists cap at 65535 values")?;
            for v in values {
                w.str(v)?;
            }
        }
        Predicate::Clause(Clause::Contains {
            col,
            needle,
            negated,
        }) => {
            w.u8(3);
            w.u32(col.index() as u32);
            w.u8(u8::from(*negated));
            w.str(needle)?;
        }
        Predicate::And(ps) => {
            w.u8(4);
            w.u16_len(ps.len(), "AND arms cap at 65535")?;
            for q in ps {
                encode_predicate(w, q)?;
            }
        }
        Predicate::Or(ps) => {
            w.u8(5);
            w.u16_len(ps.len(), "OR arms cap at 65535")?;
            for q in ps {
                encode_predicate(w, q)?;
            }
        }
        Predicate::Not(q) => {
            w.u8(6);
            encode_predicate(w, q)?;
        }
    }
    Ok(())
}

fn encode_query(w: &mut Writer, q: &Query) -> Result<(), ProtoError> {
    w.u16_len(q.aggregates.len(), "aggregate lists cap at 65535")?;
    for agg in &q.aggregates {
        w.u8(match agg.func {
            AggFunc::Sum => 0,
            AggFunc::Count => 1,
            AggFunc::Avg => 2,
        });
        encode_scalar(w, &agg.expr);
        match &agg.condition {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                encode_predicate(w, p)?;
            }
        }
    }
    match &q.predicate {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            encode_predicate(w, p)?;
        }
    }
    w.u16_len(q.group_by.len(), "GROUP BY lists cap at 65535")?;
    for c in &q.group_by {
        w.u32(c.index() as u32);
    }
    Ok(())
}

fn method_byte(m: Method) -> u8 {
    match m {
        Method::Random => 0,
        Method::RandomFilter => 1,
        Method::Lss => 2,
        Method::Ps3 => 3,
    }
}

/// Encode a frame into its full wire form: `[body_len: u32 LE][body]`.
/// Fails ([`ProtoError::Invalid`]) on values that do not fit their length
/// fields (a >64 KiB string, a >65535-entry list) rather than truncating
/// them into a frame that would decode to something else.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, ProtoError> {
    let mut w = Writer(Vec::with_capacity(64));
    w.u8(PROTO_VERSION);
    match frame {
        Frame::Request(req) => {
            w.u8(KIND_REQUEST);
            w.u64(req.request_id);
            match &req.table {
                None => w.u8(0),
                Some(name) => {
                    w.u8(1);
                    w.str(name)?;
                }
            }
            w.u8(method_byte(req.method));
            w.f64(req.frac);
            w.u64(req.seed);
            encode_query(&mut w, &req.query)?;
        }
        Frame::Response(resp) => {
            w.u8(KIND_RESPONSE);
            w.u64(resp.request_id);
            let n_aggs = resp.rows.first().map_or(0, |r| r.values.len());
            w.u16_len(n_aggs, "aggregate lists cap at 65535")?;
            w.u32_len(resp.rows.len(), "answers cap at 2^32-1 rows")?;
            for row in &resp.rows {
                w.u16_len(row.key.len(), "group keys cap at 65535 words")?;
                for word in &row.key {
                    w.u64(*word);
                }
                debug_assert_eq!(row.values.len(), n_aggs, "ragged answer rows");
                for v in &row.values {
                    w.f64(*v);
                }
            }
            w.u32(resp.partitions_read);
            w.f64(resp.picker_ms);
        }
        Frame::Error(err) => {
            w.u8(KIND_ERROR);
            w.u64(err.request_id);
            w.u8(err.code as u8);
            w.str(&err.message)?;
        }
    }
    let body = w.0;
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    Ok(wire)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over one frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }
}

fn decode_scalar(r: &mut Reader, depth: u32) -> Result<ScalarExpr, ProtoError> {
    if depth > MAX_DEPTH {
        return Err(ProtoError::Invalid("expression nested too deeply"));
    }
    Ok(match r.u8()? {
        1 => ScalarExpr::Column(ColId(r.u32()? as usize)),
        2 => ScalarExpr::Literal(r.f64()?),
        3 => {
            let op = match r.u8()? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "binary operator",
                        tag,
                    })
                }
            };
            let l = decode_scalar(r, depth + 1)?;
            let right = decode_scalar(r, depth + 1)?;
            ScalarExpr::BinOp(op, Box::new(l), Box::new(right))
        }
        tag => {
            return Err(ProtoError::BadTag {
                what: "scalar expression",
                tag,
            })
        }
    })
}

fn decode_predicate(r: &mut Reader, depth: u32) -> Result<Predicate, ProtoError> {
    if depth > MAX_DEPTH {
        return Err(ProtoError::Invalid("predicate nested too deeply"));
    }
    Ok(match r.u8()? {
        1 => {
            let col = ColId(r.u32()? as usize);
            let op = match r.u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "comparison operator",
                        tag,
                    })
                }
            };
            Predicate::Clause(Clause::Cmp {
                col,
                op,
                value: r.f64()?,
            })
        }
        2 => {
            let col = ColId(r.u32()? as usize);
            let negated = r.u8()? != 0;
            let n = r.u16()? as usize;
            let values = (0..n).map(|_| r.str()).collect::<Result<_, _>>()?;
            Predicate::Clause(Clause::In {
                col,
                values,
                negated,
            })
        }
        3 => {
            let col = ColId(r.u32()? as usize);
            let negated = r.u8()? != 0;
            Predicate::Clause(Clause::Contains {
                col,
                needle: r.str()?,
                negated,
            })
        }
        4 => {
            let n = r.u16()? as usize;
            Predicate::And(
                (0..n)
                    .map(|_| decode_predicate(r, depth + 1))
                    .collect::<Result<_, _>>()?,
            )
        }
        5 => {
            let n = r.u16()? as usize;
            Predicate::Or(
                (0..n)
                    .map(|_| decode_predicate(r, depth + 1))
                    .collect::<Result<_, _>>()?,
            )
        }
        6 => Predicate::Not(Box::new(decode_predicate(r, depth + 1)?)),
        tag => {
            return Err(ProtoError::BadTag {
                what: "predicate",
                tag,
            })
        }
    })
}

fn decode_query(r: &mut Reader) -> Result<Query, ProtoError> {
    let n_aggs = r.u16()? as usize;
    if n_aggs == 0 {
        return Err(ProtoError::Invalid("query needs at least one aggregate"));
    }
    let mut aggregates = Vec::with_capacity(n_aggs.min(1024));
    for _ in 0..n_aggs {
        let func = match r.u8()? {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Avg,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "aggregate function",
                    tag,
                })
            }
        };
        let expr = decode_scalar(r, 0)?;
        let condition = match r.u8()? {
            0 => None,
            1 => Some(decode_predicate(r, 0)?),
            tag => {
                return Err(ProtoError::BadTag {
                    what: "condition presence flag",
                    tag,
                })
            }
        };
        aggregates.push(AggExpr {
            func,
            expr,
            condition,
        });
    }
    let predicate = match r.u8()? {
        0 => None,
        1 => Some(decode_predicate(r, 0)?),
        tag => {
            return Err(ProtoError::BadTag {
                what: "predicate presence flag",
                tag,
            })
        }
    };
    let n_group = r.u16()? as usize;
    let group_by = (0..n_group)
        .map(|_| Ok(ColId(r.u32()? as usize)))
        .collect::<Result<_, ProtoError>>()?;
    Ok(Query {
        aggregates,
        predicate,
        group_by,
    })
}

/// Decode one frame *body* (the bytes after the 4-byte length prefix).
/// Trailing bytes past the known grammar are ignored (see the module docs
/// on forward compatibility).
pub fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = Reader { buf: body, pos: 0 };
    let version = r.u8()?;
    if version != PROTO_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let kind = r.u8()?;
    let request_id = r.u64()?;
    match kind {
        KIND_REQUEST => {
            let table = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "table route",
                        tag,
                    })
                }
            };
            let method = match r.u8()? {
                0 => Method::Random,
                1 => Method::RandomFilter,
                2 => Method::Lss,
                3 => Method::Ps3,
                tag => {
                    return Err(ProtoError::BadTag {
                        what: "method",
                        tag,
                    })
                }
            };
            let frac = r.f64()?;
            let seed = r.u64()?;
            let query = decode_query(&mut r)?;
            Ok(Frame::Request(RequestFrame {
                request_id,
                table,
                method,
                frac,
                seed,
                query,
            }))
        }
        KIND_RESPONSE => {
            let n_aggs = r.u16()? as usize;
            let n_rows = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n_rows.min(4096));
            for _ in 0..n_rows {
                let key_words = r.u16()? as usize;
                let key = (0..key_words).map(|_| r.u64()).collect::<Result<_, _>>()?;
                let values = (0..n_aggs).map(|_| r.f64()).collect::<Result<_, _>>()?;
                rows.push(WireRow { key, values });
            }
            Ok(Frame::Response(ResponseFrame {
                request_id,
                rows,
                partitions_read: r.u32()?,
                picker_ms: r.f64()?,
            }))
        }
        KIND_ERROR => {
            let code = ErrorCode::from_byte(r.u8()?)?;
            Ok(Frame::Error(ErrorFrame {
                request_id,
                code,
                message: r.str()?,
            }))
        }
        kind => Err(ProtoError::BadKind(kind)),
    }
}

/// Incremental frame assembly over a byte stream.
///
/// Feed raw socket reads in with [`FrameBuffer::push`], then pull complete
/// frames with [`FrameBuffer::next_frame`] until it yields `Ok(None)`.
/// The length prefix is validated against the buffer's cap *before* the
/// body is awaited, so one bad prefix can never commit the peer to
/// buffering gigabytes.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames (compacted lazily).
    consumed: usize,
    max_frame: u32,
}

impl FrameBuffer {
    /// A buffer accepting bodies up to `max_frame` bytes.
    pub fn new(max_frame: u32) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            consumed: 0,
            max_frame,
        }
    }

    /// Append raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: yielded-frame bytes at the front are dead.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one has fully arrived. Errors
    /// are unrecoverable for the connection: framing is lost once a body
    /// fails to parse or a length prefix lies.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(pending[..4].try_into().unwrap());
        if body_len > self.max_frame {
            return Err(ProtoError::FrameTooLarge {
                len: body_len,
                max: self.max_frame,
            });
        }
        let total = 4 + body_len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = decode_body(&pending[4..total])?;
        self.consumed += total;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed by a yielded frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_core::Method;

    fn sample_query() -> Query {
        Query::new(
            vec![
                AggExpr::sum(ScalarExpr::col(ColId(0)).mul(ScalarExpr::col(ColId(1)))),
                AggExpr::count(),
                AggExpr::avg(ScalarExpr::col(ColId(1)).add(ScalarExpr::Literal(2.5))).filtered(
                    Predicate::Clause(Clause::Cmp {
                        col: ColId(0),
                        op: CmpOp::Ge,
                        value: -3.25,
                    }),
                ),
            ],
            Some(Predicate::And(vec![
                Predicate::Or(vec![
                    Predicate::Clause(Clause::Cmp {
                        col: ColId(1),
                        op: CmpOp::Lt,
                        value: 9.5,
                    }),
                    Predicate::Clause(Clause::In {
                        col: ColId(2),
                        values: vec!["aa".into(), "bb".into()],
                        negated: true,
                    }),
                ]),
                Predicate::Not(Box::new(Predicate::Clause(Clause::Contains {
                    col: ColId(2),
                    needle: "x".into(),
                    negated: false,
                }))),
            ])),
            vec![ColId(2), ColId(0)],
        )
    }

    #[test]
    fn request_frames_roundtrip_bit_exactly() {
        let frame = Frame::Request(RequestFrame {
            request_id: 0xDEAD_BEEF_0BAD_F00D,
            table: Some("lineitem".into()),
            method: Method::Ps3,
            frac: 0.125,
            seed: 42,
            query: sample_query(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        let decoded = decode_body(&wire[4..]).expect("decode");
        assert_eq!(decoded, frame);
        // The length prefix covers exactly the body.
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4);
    }

    #[test]
    fn response_frames_roundtrip_and_rebuild_the_answer() {
        let frame = ResponseFrame {
            request_id: 7,
            rows: vec![
                WireRow {
                    key: vec![],
                    values: vec![1.5, f64::NAN.to_bits() as f64, -0.0],
                },
                WireRow {
                    key: vec![3, 9],
                    values: vec![2.0, 4.0, 8.0],
                },
            ],
            partitions_read: 12,
            picker_ms: 0.25,
        };
        let wire = encode_frame(&Frame::Response(frame.clone())).expect("encodes");
        let Frame::Response(decoded) = decode_body(&wire[4..]).expect("decode") else {
            panic!("wrong kind");
        };
        assert_eq!(decoded, frame);
        let answer = decoded.to_answer();
        assert_eq!(answer.num_groups(), 2);
        assert_eq!(
            answer.groups[&GroupKey(vec![3, 9].into_boxed_slice())],
            vec![2.0, 4.0, 8.0]
        );
    }

    #[test]
    fn nan_and_negative_zero_survive_the_wire_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234); // NaN with payload
        let frame = Frame::Response(ResponseFrame {
            request_id: 1,
            rows: vec![WireRow {
                key: vec![(-0.0f64).to_bits()],
                values: vec![weird, -0.0],
            }],
            partitions_read: 0,
            picker_ms: 0.0,
        });
        let wire = encode_frame(&frame).expect("encodes");
        let Frame::Response(decoded) = decode_body(&wire[4..]).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(decoded.rows[0].values[0].to_bits(), weird.to_bits());
        assert_eq!(decoded.rows[0].values[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn error_frames_roundtrip() {
        let frame = Frame::Error(ErrorFrame {
            request_id: 99,
            code: ErrorCode::QueueFull,
            message: "request queue is full".into(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        assert_eq!(decode_body(&wire[4..]).unwrap(), frame);
    }

    #[test]
    fn version_and_kind_mismatches_are_rejected() {
        let frame = Frame::Error(ErrorFrame {
            request_id: 0,
            code: ErrorCode::Internal,
            message: String::new(),
        });
        let mut wire = encode_frame(&frame).expect("encodes");
        wire[4] = 9; // version byte
        assert_eq!(decode_body(&wire[4..]), Err(ProtoError::BadVersion(9)));
        let mut wire = encode_frame(&frame).expect("encodes");
        wire[5] = 200; // kind byte
        assert_eq!(decode_body(&wire[4..]), Err(ProtoError::BadKind(200)));
    }

    #[test]
    fn truncated_bodies_and_garbage_tags_error_instead_of_panicking() {
        let frame = Frame::Request(RequestFrame {
            request_id: 5,
            table: None,
            method: Method::Random,
            frac: 0.5,
            seed: 1,
            query: sample_query(),
        });
        let wire = encode_frame(&frame).expect("encodes");
        // Every proper prefix of the body either truncates or (rarely, if a
        // prefix happens to end on a field boundary) parses; it never panics.
        for cut in 0..wire.len() - 4 {
            let _ = decode_body(&wire[4..4 + cut]);
        }
        // Garbage at every byte position decodes or errors, never panics.
        for pos in 4..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0xFF;
            let _ = decode_body(&bad[4..]);
        }
    }

    #[test]
    fn frame_buffer_reassembles_across_arbitrary_splits() {
        let frames = [
            Frame::Request(RequestFrame {
                request_id: 1,
                table: Some("t".into()),
                method: Method::Ps3,
                frac: 0.1,
                seed: 2,
                query: sample_query(),
            }),
            Frame::Error(ErrorFrame {
                request_id: 2,
                code: ErrorCode::Shutdown,
                message: "bye".into(),
            }),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f).expect("encodes"));
        }
        // Feed the stream one byte at a time; both frames must reassemble.
        let mut buf = FrameBuffer::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for b in &wire {
            buf.push(std::slice::from_ref(b));
            while let Some(frame) = buf.next_frame().expect("clean stream") {
                got.push(frame);
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn values_too_large_for_their_length_fields_refuse_to_encode() {
        // A needle longer than a u16 length field must error, not truncate
        // into a frame that decodes to a different query.
        let huge = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            frac: 0.1,
            seed: 1,
            query: Query::new(
                vec![AggExpr::count()],
                Some(Predicate::Clause(Clause::Contains {
                    col: ColId(0),
                    needle: "x".repeat(70_000),
                    negated: false,
                })),
                vec![],
            ),
        });
        assert!(matches!(encode_frame(&huge), Err(ProtoError::Invalid(_))));

        let wide_in = Frame::Request(RequestFrame {
            request_id: 1,
            table: None,
            method: Method::Ps3,
            frac: 0.1,
            seed: 1,
            query: Query::new(
                vec![AggExpr::count()],
                Some(Predicate::Clause(Clause::In {
                    col: ColId(0),
                    values: (0..70_000).map(|i| i.to_string()).collect(),
                    negated: false,
                })),
                vec![],
            ),
        });
        assert!(matches!(
            encode_frame(&wide_in),
            Err(ProtoError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut buf = FrameBuffer::new(1024);
        buf.push(&(4096u32).to_le_bytes());
        assert_eq!(
            buf.next_frame(),
            Err(ProtoError::FrameTooLarge {
                len: 4096,
                max: 1024
            })
        );
    }

    #[test]
    fn trailing_bytes_after_known_fields_are_ignored() {
        // Forward-compat: a future minor revision may append fields.
        let frame = Frame::Error(ErrorFrame {
            request_id: 3,
            code: ErrorCode::Internal,
            message: "m".into(),
        });
        let mut wire = encode_frame(&frame).expect("encodes");
        wire.extend_from_slice(&[0xAB, 0xCD]); // future fields
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_body(&wire[4..]).unwrap(), frame);
    }

    #[test]
    fn request_frame_round_trips_through_query_request() {
        let req = QueryRequest::ps3(sample_query(), 0.1, 1).on_table("events");
        let frame = RequestFrame::from_request(17, &req).expect("named routes encode");
        let rebuilt = frame.into_query_request();
        assert_eq!(rebuilt.query, req.query);
        assert_eq!(rebuilt.table, req.table);
        assert_eq!(rebuilt.seed, req.seed);
        assert_eq!(rebuilt.frac.to_bits(), req.frac.to_bits());
        // Id routes are router-local and refuse to encode; the refusal is
        // exercised end-to-end in tests/net_serving.rs where a real router
        // can mint one.
    }
}
