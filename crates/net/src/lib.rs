//! The network serving front door: a wire protocol, an event-loop TCP
//! server, and a blocking client over the PS3
//! [`Router`](ps3_core::router::Router).
//!
//! This crate turns the in-process multi-tenant router into a cluster
//! service. The layers, bottom to top:
//!
//! - [`proto`] — the length-prefixed, versioned binary protocol: a
//!   request carries a table route, a serialized query, and the
//!   `(method, budget, seed)` triple that makes every answer
//!   deterministic, where the budget is typed (an explicit fraction or a
//!   declarative error/latency target for the server's planner); a
//!   response carries the answer rows, execution stats, and the answer's
//!   error estimate; progressive requests stream refining partial frames;
//!   errors are typed. Zero external dependencies; byte layout documented
//!   in `docs/PROTOCOL.md` and pinned by doc-tests.
//! - [`server`] — a sharded non-blocking front door: `net_shards`
//!   independent event loops (readiness `poll(2)` via
//!   [`ps3_runtime::poll`], each a detached
//!   [`ThreadPool`](ps3_runtime::ThreadPool) task owning a disjoint set of
//!   connections, with accepted sockets handed round-robin from the
//!   listener shard). Each loop parses frames, submits through
//!   per-connection [`Tenant`](ps3_core::router::Tenant) handles — so the
//!   router's backpressure and quota semantics apply on the wire — and
//!   batches responses out through `writev` as tickets complete, woken by
//!   each ticket's completion hook.
//! - [`client`] — a blocking connection with a synchronous
//!   [`request`](client::NetClient::request) path and a pipelined
//!   [`send`](client::NetClient::send)/[`recv`](client::NetClient::recv)
//!   pair; queued sends coalesce into one write.
//!
//! The determinism contract extends across the wire: the answer to
//! `(table, query, method, planned frac, seed)` served over TCP is
//! bit-identical to a direct in-process `Ps3System::answer_on` call with
//! the same tuple (`tests/net_serving.rs` proves it with 8 concurrent
//! clients), and a progressive request's final frame is bit-identical to
//! the one-shot answer.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ps3_core::{QueryRequest, Router};
//! use ps3_net::{NetClient, NetServer};
//! # fn trained_system() -> Arc<ps3_core::Ps3System> { unimplemented!() }
//! # fn some_query() -> ps3_query::Query { unimplemented!() }
//!
//! let router = Router::builder().table("events", trained_system()).build();
//! let server = NetServer::bind(Arc::clone(&router), "127.0.0.1:0")?;
//!
//! let mut client = NetClient::connect(server.addr())?;
//! // Declarative error budget: the server's planner picks the fraction.
//! let answer = client
//!     .request(
//!         &QueryRequest::ps3(some_query(), 0.1, 7)
//!             .on_table("events")
//!             .with_error_target(0.05),
//!     )
//!     .expect("served");
//! println!(
//!     "{} groups from {} partitions at frac {} (rel err {})",
//!     answer.answer.num_groups(),
//!     answer.meta.partitions_read,
//!     answer.meta.planned_frac,
//!     answer.meta.error_estimate.rel_err,
//! );
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
mod outbuf;
pub mod proto;
#[cfg(unix)]
pub mod server;

pub use client::{
    ClientError, NetClient, RemoteAnswer, RemotePartial, ServerReply, StreamedAnswer,
};
pub use proto::{ErrorCode, ErrorFrame, Frame, ProtoError, MIN_PROTO_VERSION, PROTO_VERSION};
#[cfg(unix)]
pub use server::{NetServer, ServerConfig, ServerStats};

/// Binds `docs/PROTOCOL.md` into the doc-test suite: the worked byte-level
/// examples in that document are executable, so `cargo test` fails if the
/// documented bytes ever drift from what [`proto`] actually encodes.
#[doc = include_str!("../../../docs/PROTOCOL.md")]
#[cfg(doctest)]
pub struct ProtocolDocTests;
