//! Columnar data: numeric vectors and dictionary-encoded categoricals.
//!
//! Column payloads are [`Bytes`] — either heap-owned vectors (built tables)
//! or typed windows into a mapped artifact (thawed tables). Everything that
//! consumes columns goes through slices, so the two storage modes are
//! indistinguishable downstream.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use crate::mmap::Bytes;

/// Rows per kernel chunk: one `u64` selection-mask word covers one chunk.
pub const CHUNK_ROWS: usize = 64;

/// Split a column slice into full 64-row chunks plus the tail, the shape
/// the `ps3_query` kernels consume: each full chunk is a fixed-size array,
/// which lets LLVM unroll and autovectorize the per-chunk mask loops.
pub fn chunks64<T>(data: &[T]) -> (impl Iterator<Item = &[T; CHUNK_ROWS]>, &[T]) {
    let it = data.chunks_exact(CHUNK_ROWS);
    let tail = it.remainder();
    (
        it.map(|c| <&[T; CHUNK_ROWS]>::try_from(c).expect("chunks_exact yields full chunks")),
        tail,
    )
}

/// A table-global dictionary for one categorical column.
///
/// Codes are assigned in first-seen order and are consistent across all
/// partitions of the table. This matters downstream: heavy-hitter sketches
/// keyed by code can be unioned across partitions to form the *global* heavy
/// hitter list (§3.2) without re-reading any strings.
#[derive(Debug, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a dictionary from its values in code order (the artifact
    /// decode path). Fails on duplicates instead of silently remapping.
    pub fn from_values(values: Vec<String>) -> Result<Self, &'static str> {
        let mut d = Self::new();
        for (i, v) in values.iter().enumerate() {
            if d.intern(v) as usize != i {
                return Err("duplicate dictionary value");
            }
        }
        Ok(d)
    }

    /// Return the code for `s`, inserting it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), c);
        c
    }

    /// Look up the code of `s` without inserting.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for a code.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over all `(code, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }

    /// Codes of all dictionary entries that contain `needle` as a substring.
    ///
    /// Supports the paper's regex-style textual filters (`'%promo%'`, §3.2):
    /// with a dictionary in hand, a `LIKE '%needle%'` clause is just an `IN`
    /// over the matching codes.
    pub fn codes_containing(&self, needle: &str) -> Vec<u32> {
        self.iter()
            .filter(|(_, v)| v.contains(needle))
            .map(|(c, _)| c)
            .collect()
    }
}

/// Physical storage for one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Numeric (or date) values.
    Numeric(Bytes<f64>),
    /// Dictionary codes plus the shared dictionary.
    Categorical {
        /// Per-row dictionary codes.
        codes: Bytes<u32>,
        /// The shared dictionary (one `Arc` per column, shared across
        /// permutations and retrain generations).
        dict: Arc<Dictionary>,
    },
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Numeric values, if this is a numeric column.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Numeric(v) => Some(v),
            ColumnData::Categorical { .. } => None,
        }
    }

    /// Codes and dictionary, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<(&[u32], &Dictionary)> {
        match self {
            ColumnData::Numeric(_) => None,
            ColumnData::Categorical { codes, dict } => Some((codes, dict)),
        }
    }

    /// Numeric values of a row range, ready for [`chunks64`] iteration.
    ///
    /// # Panics
    /// Panics if the column is categorical or the range is out of bounds.
    pub fn numeric_range(&self, rows: Range<usize>) -> &[f64] {
        &self.as_numeric().expect("numeric column")[rows]
    }

    /// Dictionary codes of a row range, ready for [`chunks64`] iteration.
    ///
    /// # Panics
    /// Panics if the column is numeric or the range is out of bounds.
    pub fn codes_range(&self, rows: Range<usize>) -> &[u32] {
        &self.as_categorical().expect("categorical column").0[rows]
    }

    /// Reorder rows by `perm` (row `i` of the result is old row `perm[i]`).
    ///
    /// The permuted payload is always owned (a mapped source stays mapped
    /// and untouched); the dictionary is shared, never deep-copied.
    pub fn permute(&self, perm: &[usize]) -> ColumnData {
        match self {
            ColumnData::Numeric(v) => {
                ColumnData::Numeric(perm.iter().map(|&i| v[i]).collect::<Vec<_>>().into())
            }
            ColumnData::Categorical { codes, dict } => ColumnData::Categorical {
                codes: perm.iter().map(|&i| codes[i]).collect::<Vec<_>>().into(),
                dict: Arc::clone(dict),
            },
        }
    }

    /// A sort key for row `i`: numeric columns order by value, categorical
    /// columns by their dictionary string (so layouts sorted on a categorical
    /// column group equal values together, like the paper's Aria layout
    /// sorted by `TenantId`).
    pub fn sort_key(&self, i: usize) -> SortKey<'_> {
        match self {
            ColumnData::Numeric(v) => SortKey::Num(v[i]),
            ColumnData::Categorical { codes, dict } => SortKey::Str(dict.value(codes[i])),
        }
    }
}

/// Ordering key used by [`crate::layout`] when sorting rows.
#[derive(Debug, PartialEq)]
pub enum SortKey<'a> {
    /// Numeric key; NaNs order last.
    Num(f64),
    /// String key.
    Str(&'a str),
}

impl Eq for SortKey<'_> {}

impl PartialOrd for SortKey<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use SortKey::*;
        match (self, other) {
            (Num(a), Num(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Mixed keys never happen for a single column; order numerics first
            // deterministically rather than panicking.
            (Num(_), Str(_)) => std::cmp::Ordering::Less,
            (Str(_), Num(_)) => std::cmp::Ordering::Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interning_is_stable() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.code("b"), Some(1));
        assert_eq!(d.code("c"), None);
        assert_eq!(d.value(1), "b");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn substring_lookup() {
        let mut d = Dictionary::new();
        for s in ["PROMO BRUSHED", "STANDARD", "SMALL PROMO", "ECONOMY"] {
            d.intern(s);
        }
        let mut hits = d.codes_containing("PROMO");
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
        assert!(d.codes_containing("zzz").is_empty());
    }

    #[test]
    fn permute_numeric_and_categorical() {
        let num = ColumnData::Numeric(vec![10.0, 20.0, 30.0].into());
        let out = num.permute(&[2, 0, 1]);
        assert_eq!(out.as_numeric().unwrap(), &[30.0, 10.0, 20.0]);

        let mut d = Dictionary::new();
        let codes = vec![d.intern("x"), d.intern("y"), d.intern("x")];
        let cat = ColumnData::Categorical {
            codes: codes.into(),
            dict: Arc::new(d),
        };
        let out = cat.permute(&[1, 1, 0]);
        let (codes, dict) = out.as_categorical().unwrap();
        assert_eq!(codes, &[1, 1, 0]);
        assert_eq!(dict.value(0), "x");
    }

    #[test]
    fn sort_keys_order() {
        let num = ColumnData::Numeric(vec![2.0, 1.0].into());
        assert!(num.sort_key(1) < num.sort_key(0));

        let mut d = Dictionary::new();
        // Interning order differs from lexicographic order on purpose.
        let codes = vec![d.intern("zeta"), d.intern("alpha")];
        let cat = ColumnData::Categorical {
            codes: codes.into(),
            dict: Arc::new(d),
        };
        assert!(cat.sort_key(1) < cat.sort_key(0));
    }

    #[test]
    fn chunked_access() {
        let data: Vec<f64> = (0..150).map(f64::from).collect();
        let col = ColumnData::Numeric(data.into());
        let range = col.numeric_range(10..150);
        let (chunks, tail) = chunks64(range);
        let chunks: Vec<_> = chunks.collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0][0], 10.0);
        assert_eq!(chunks[1][63], 137.0);
        assert_eq!(tail.len(), 140 % CHUNK_ROWS);
        assert_eq!(tail[0], 138.0);

        let mut d = Dictionary::new();
        let codes: Vec<u32> = (0..70)
            .map(|i| d.intern(if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        let col = ColumnData::Categorical {
            codes: codes.into(),
            dict: Arc::new(d),
        };
        assert_eq!(col.codes_range(0..3), &[0, 1, 0]);
        let (chunks, tail) = chunks64(col.codes_range(0..70));
        assert_eq!(chunks.count(), 1);
        assert_eq!(tail.len(), 6);
    }

    #[test]
    fn nan_ordering_is_total() {
        let num = ColumnData::Numeric(vec![f64::NAN, 1.0].into());
        // total_cmp puts NaN after every finite value.
        assert!(num.sort_key(1) < num.sort_key(0));
    }
}
