//! Partitioned in-memory columnar storage.
//!
//! The paper's deployment target stores data as large immutable partitions
//! (SCOPE extents / HDFS blocks, tens to hundreds of MB). All PS3 needs from
//! the storage layer is:
//!
//! * typed, named columns ([`schema`], [`mod@column`]),
//! * a table abstraction over them ([`table`]),
//! * a division of the row space into contiguous partitions ([`partition`]),
//! * the ability to materialize different *data layouts* — the order rows
//!   were ingested in — without changing partition boundaries ([`layout`]).
//!
//! Everything downstream (sketches, features, the picker) treats a partition
//! as an opaque unit that is either read entirely or not at all, exactly as
//! the paper does.

pub mod column;
pub mod format;
pub mod layout;
pub mod mmap;
pub mod partition;
pub mod schema;
pub mod table;
pub mod value;

pub use column::{chunks64, ColumnData, Dictionary, CHUNK_ROWS};
pub use format::{Artifact, ArtifactWriter, FormatError};
pub use layout::Layout;
pub use mmap::{Bytes, Mmap};
pub use partition::{PartitionId, PartitionedTable, Partitioning};
pub use schema::{ColId, ColumnMeta, ColumnType, Schema};
pub use table::Table;
pub use value::Value;
