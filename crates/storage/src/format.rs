//! The PS3 artifact container: a flat, versioned, checksummed on-disk
//! format for frozen tables and trained systems.
//!
//! The full grammar, with worked byte-level examples, lives in
//! `docs/FORMAT.md` (doc-tested from `ps3_core`). The shape in one
//! paragraph: a fixed 64-byte little-endian header (magic, version, section
//! count, file length, section-table checksum), a section table of
//! `(kind, offset, length, checksum)` descriptors, then the section
//! payloads themselves, each starting at a 64-byte-aligned offset. Column
//! payloads inside [`SEC_COLDATA`] are raw LE machine words at 64-byte
//! relative offsets, so a mapped artifact serves `&[f64]`/`&[u32]` slices
//! directly — the `flat_serialize` discipline: offsets into one immutable
//! buffer instead of a deserialization copy.
//!
//! Decoding is paranoid by construction: magic, version, counts, offsets,
//! alignment, overlap and per-section FNV-1a checksums are all validated
//! *before* any typed slice is formed, and every failure is a typed
//! [`FormatError`] — corrupted artifacts can never panic a server (see
//! `tests/artifact_corruption.rs`).

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use crate::column::{ColumnData, Dictionary};
use crate::mmap::{Bytes, MapSliceError, Mmap};
use crate::partition::{PartitionedTable, Partitioning};
use crate::schema::{ColumnMeta, ColumnType, Schema};
use crate::table::Table;

/// File magic: identifies a PS3 flat artifact.
pub const MAGIC: [u8; 8] = *b"PS3FLAT\0";
/// Current container version.
pub const FORMAT_VERSION: u32 = 1;
/// Every section payload starts at a multiple of this (cache-line and SIMD
/// friendly, and strictly stricter than any element alignment we map).
pub const SECTION_ALIGN: usize = 64;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Length of one section-table entry in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;
/// Upper bound on the section count (sanity guard against corrupt headers).
pub const MAX_SECTIONS: usize = 4096;

/// Section kind: the frozen [`Table`] (schema, dictionaries, payload refs).
pub const SEC_TABLE: u32 = 1;
/// Section kind: the [`Partitioning`] end offsets.
pub const SEC_PARTITIONING: u32 = 2;
/// Section kind: raw column payloads referenced by [`SEC_TABLE`].
pub const SEC_COLDATA: u32 = 3;
/// Section kind: summary statistics (`ps3_stats`).
pub const SEC_STATS: u32 = 4;
/// Section kind: the trained picker state (`ps3_core`).
pub const SEC_TRAINED: u32 = 5;
/// Section kind: the LSS baseline model (`ps3_core`).
pub const SEC_LSS: u32 = 6;
/// Section kind: the training workload queries (`ps3_core`).
pub const SEC_TRAINING: u32 = 7;

/// Sentinel used in [`FormatError::ChecksumMismatch`] for the section table
/// itself (which has no kind).
pub const SECTION_TABLE: u32 = u32::MAX;

/// Why an artifact was rejected. Every decode failure is one of these —
/// never a panic.
#[derive(Debug)]
pub enum FormatError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The first 8 bytes are not the PS3 artifact magic.
    BadMagic,
    /// The container version is not one this build understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A length field points past the end of the available bytes.
    Truncated(&'static str),
    /// A section's recorded FNV-1a checksum does not match its bytes.
    ChecksumMismatch {
        /// Section kind, or [`SECTION_TABLE`] for the table itself.
        section: u32,
    },
    /// A section or payload offset violates the 64-byte alignment rule or
    /// the element alignment of its type.
    Misaligned {
        /// Section kind the offset belongs to.
        section: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent kind.
        kind: u32,
    },
    /// A structural invariant inside a section payload failed.
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "artifact io error: {e}"),
            FormatError::BadMagic => write!(f, "not a PS3 artifact (bad magic)"),
            FormatError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact version {found}")
            }
            FormatError::Truncated(what) => write!(f, "artifact truncated: {what}"),
            FormatError::ChecksumMismatch { section } if *section == SECTION_TABLE => {
                write!(f, "checksum mismatch in section table")
            }
            FormatError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            FormatError::Misaligned { section } => {
                write!(f, "misaligned offset in section {section}")
            }
            FormatError::MissingSection { kind } => write!(f, "missing section {kind}"),
            FormatError::Corrupt(what) => write!(f, "corrupt artifact: {what}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the artifact checksum (fast, dependency-free,
/// and plenty for corruption detection; this is not a cryptographic seal).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    while !buf.len().is_multiple_of(align) {
        buf.push(0);
    }
}

/// Little-endian encoder for section payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` bit pattern (LE).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long for artifact"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append `bytes` as a `u32`-length-prefixed blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(u32::try_from(b.len()).expect("blob too long for artifact"));
        self.buf.extend_from_slice(b);
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian cursor over a section payload.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FormatError> {
        if self.remaining() < n {
            return Err(FormatError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, FormatError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a LE `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a LE `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a LE `f64` bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, FormatError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a LE `u64` and convert to `usize`.
    pub fn usize(&mut self, what: &'static str) -> Result<usize, FormatError> {
        usize::try_from(self.u64(what)?).map_err(|_| FormatError::Corrupt(what))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, FormatError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| FormatError::Corrupt(what))
    }

    /// Read a `u32`-length-prefixed blob.
    pub fn blob(&mut self, what: &'static str) -> Result<&'a [u8], FormatError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Fail unless the payload was consumed exactly.
    pub fn finish(&self, what: &'static str) -> Result<(), FormatError> {
        if self.remaining() != 0 {
            return Err(FormatError::Corrupt(what));
        }
        Ok(())
    }
}

/// Accumulates sections and writes the container file.
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a section. Kinds must be unique within one artifact.
    ///
    /// # Panics
    /// Panics on a duplicate kind — that is a caller bug, not an input
    /// condition.
    pub fn add_section(&mut self, kind: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(k, _)| *k != kind),
            "duplicate artifact section kind {kind}"
        );
        self.sections.push((kind, payload));
    }

    /// Serialize the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.sections.len() <= MAX_SECTIONS, "too many sections");
        let table_len = self.sections.len() * SECTION_ENTRY_LEN;

        // Lay out payload offsets first.
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = HEADER_LEN + table_len;
        cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
        for (_, payload) in &self.sections {
            offsets.push(cursor);
            cursor += payload.len();
            cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
        }
        let file_len = offsets
            .last()
            .zip(self.sections.last())
            .map_or(HEADER_LEN + table_len, |(&off, (_, p))| off + p.len());

        // Section table.
        let mut table = Vec::with_capacity(table_len);
        for ((kind, payload), &off) in self.sections.iter().zip(&offsets) {
            table.extend_from_slice(&kind.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&(off as u64).to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&fnv1a(payload).to_le_bytes());
        }

        // Header.
        let mut out = Vec::with_capacity(file_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&(file_len as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&table).to_le_bytes());
        pad_to(&mut out, HEADER_LEN);
        out.extend_from_slice(&table);
        for ((_, payload), &off) in self.sections.iter().zip(&offsets) {
            pad_to(&mut out, SECTION_ALIGN);
            debug_assert_eq!(out.len(), off);
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), file_len);
        out
    }

    /// Write the container to `path` via a temp file + rename, so a crash
    /// mid-write never leaves a half-written artifact under the final name
    /// (and a mapped reader of the old file keeps its pages).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

#[derive(Debug, Clone, Copy)]
struct SectionDesc {
    kind: u32,
    offset: usize,
    len: usize,
}

/// A validated, mapped artifact: the read side of the container.
///
/// `open` performs every structural check — magic, version, section table
/// bounds and checksum, per-section alignment, overlap and checksums —
/// before returning; afterwards [`section`](Artifact::section) lookups are
/// infallible slices into the mapping.
#[derive(Debug)]
pub struct Artifact {
    mmap: Arc<Mmap>,
    sections: Vec<SectionDesc>,
}

impl Artifact {
    /// Map and validate the artifact at `path`.
    pub fn open(path: &Path) -> Result<Self, FormatError> {
        let file = File::open(path)?;
        let mmap = Arc::new(Mmap::map(&file)?);
        Self::from_mmap(mmap)
    }

    /// Validate an already-mapped artifact.
    pub fn from_mmap(mmap: Arc<Mmap>) -> Result<Self, FormatError> {
        let bytes = mmap.as_slice();
        if bytes.len() < HEADER_LEN {
            return Err(FormatError::Truncated("header"));
        }
        if bytes[0..8] != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(FormatError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        if count > MAX_SECTIONS {
            return Err(FormatError::Corrupt("section count"));
        }
        let file_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if file_len != bytes.len() as u64 {
            return Err(FormatError::Truncated("file length"));
        }
        let table_checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());

        let table_end = HEADER_LEN + count * SECTION_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(FormatError::Truncated("section table"));
        }
        let table = &bytes[HEADER_LEN..table_end];
        if fnv1a(table) != table_checksum {
            return Err(FormatError::ChecksumMismatch {
                section: SECTION_TABLE,
            });
        }

        let mut sections = Vec::with_capacity(count);
        let mut prev_end = table_end;
        for i in 0..count {
            let e = &table[i * SECTION_ENTRY_LEN..(i + 1) * SECTION_ENTRY_LEN];
            let kind = u32::from_le_bytes(e[0..4].try_into().unwrap());
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let checksum = u64::from_le_bytes(e[24..32].try_into().unwrap());

            let offset = usize::try_from(offset)
                .map_err(|_| FormatError::Corrupt("section offset overflow"))?;
            let len =
                usize::try_from(len).map_err(|_| FormatError::Corrupt("section len overflow"))?;
            if offset % SECTION_ALIGN != 0 {
                return Err(FormatError::Misaligned { section: kind });
            }
            // Sections are laid out in table order, ascending and
            // non-overlapping.
            if offset < prev_end {
                return Err(FormatError::Corrupt("overlapping sections"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(FormatError::Corrupt("section end overflow"))?;
            if end > bytes.len() {
                return Err(FormatError::Truncated("section body"));
            }
            if sections.iter().any(|s: &SectionDesc| s.kind == kind) {
                return Err(FormatError::Corrupt("duplicate section kind"));
            }
            if fnv1a(&bytes[offset..end]) != checksum {
                return Err(FormatError::ChecksumMismatch { section: kind });
            }
            sections.push(SectionDesc { kind, offset, len });
            prev_end = end;
        }

        Ok(Self { mmap, sections })
    }

    /// The payload of section `kind`.
    pub fn section(&self, kind: u32) -> Result<&[u8], FormatError> {
        let d = self
            .sections
            .iter()
            .find(|s| s.kind == kind)
            .ok_or(FormatError::MissingSection { kind })?;
        Ok(&self.mmap.as_slice()[d.offset..d.offset + d.len])
    }

    /// `(absolute offset, length)` of section `kind`, for building mapped
    /// [`Bytes`] windows into it.
    pub fn section_range(&self, kind: u32) -> Result<(usize, usize), FormatError> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| (s.offset, s.len))
            .ok_or(FormatError::MissingSection { kind })
    }

    /// The mapping backing this artifact.
    pub fn mmap(&self) -> &Arc<Mmap> {
        &self.mmap
    }
}

fn map_err(kind: u32, e: MapSliceError) -> FormatError {
    match e {
        MapSliceError::OutOfBounds => FormatError::Truncated("column payload"),
        MapSliceError::Misaligned => FormatError::Misaligned { section: kind },
    }
}

/// Encode a [`PartitionedTable`] into `w` as the [`SEC_TABLE`],
/// [`SEC_PARTITIONING`] and [`SEC_COLDATA`] sections.
pub fn encode_partitioned_table(w: &mut ArtifactWriter, pt: &PartitionedTable) {
    let table = pt.table();
    let mut coldata = Vec::new();
    let mut meta = Enc::new();
    meta.u32(u32::try_from(table.schema().len()).expect("column count"));
    meta.u64(table.num_rows() as u64);
    for (id, cm) in table.schema().iter() {
        meta.str(&cm.name);
        meta.u8(match cm.ctype {
            ColumnType::Numeric => 0,
            ColumnType::Date => 1,
            ColumnType::Categorical => 2,
        });
        pad_to(&mut coldata, SECTION_ALIGN);
        meta.u64(coldata.len() as u64);
        match table.column(id) {
            ColumnData::Numeric(values) => {
                for v in values.iter() {
                    coldata.extend_from_slice(&v.to_le_bytes());
                }
            }
            ColumnData::Categorical { codes, dict } => {
                for c in codes.iter() {
                    coldata.extend_from_slice(&c.to_le_bytes());
                }
                meta.u32(u32::try_from(dict.len()).expect("dictionary size"));
                for (_, v) in dict.iter() {
                    meta.str(v);
                }
            }
        }
    }
    w.add_section(SEC_TABLE, meta.into_bytes());

    let p = pt.partitioning();
    let mut ends = Enc::new();
    ends.u32(u32::try_from(p.len()).expect("partition count"));
    for pid in p.ids() {
        ends.u64(p.rows(pid).end as u64);
    }
    w.add_section(SEC_PARTITIONING, ends.into_bytes());
    w.add_section(SEC_COLDATA, coldata);
}

/// Decode the table + partitioning sections of `a`, mapping column payloads
/// zero-copy out of the artifact.
pub fn decode_partitioned_table(a: &Artifact) -> Result<PartitionedTable, FormatError> {
    let (col_off, col_len) = a.section_range(SEC_COLDATA)?;
    let mut c = Cursor::new(a.section(SEC_TABLE)?);
    let num_cols = c.u32("table column count")? as usize;
    if num_cols > MAX_SECTIONS {
        return Err(FormatError::Corrupt("table column count"));
    }
    let num_rows = c.usize("table row count")?;

    let mut metas = Vec::with_capacity(num_cols);
    let mut columns = Vec::with_capacity(num_cols);
    for _ in 0..num_cols {
        let name = c.str("column name")?.to_owned();
        if metas.iter().any(|m: &ColumnMeta| m.name == name) {
            return Err(FormatError::Corrupt("duplicate column name"));
        }
        let ctype = match c.u8("column type")? {
            0 => ColumnType::Numeric,
            1 => ColumnType::Date,
            2 => ColumnType::Categorical,
            _ => return Err(FormatError::Corrupt("column type tag")),
        };
        let rel = c.usize("column payload offset")?;
        let elem = if ctype == ColumnType::Categorical {
            4
        } else {
            8
        };
        let end = rel
            .checked_add(
                num_rows
                    .checked_mul(elem)
                    .ok_or(FormatError::Corrupt("column payload size"))?,
            )
            .ok_or(FormatError::Corrupt("column payload size"))?;
        if end > col_len {
            return Err(FormatError::Truncated("column payload"));
        }
        let abs = col_off + rel;
        let data = match ctype {
            ColumnType::Numeric | ColumnType::Date => ColumnData::Numeric(
                Bytes::mapped(Arc::clone(a.mmap()), abs, num_rows)
                    .map_err(|e| map_err(SEC_COLDATA, e))?,
            ),
            ColumnType::Categorical => {
                let codes = Bytes::<u32>::mapped(Arc::clone(a.mmap()), abs, num_rows)
                    .map_err(|e| map_err(SEC_COLDATA, e))?;
                let n = c.u32("dictionary size")? as usize;
                let mut values = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    values.push(c.str("dictionary entry")?.to_owned());
                }
                let dict = Dictionary::from_values(values)
                    .map_err(|_| FormatError::Corrupt("duplicate dictionary entry"))?;
                // Codes must index into the dictionary, or downstream
                // lookups would panic.
                if codes.iter().any(|&code| code as usize >= dict.len()) {
                    return Err(FormatError::Corrupt("dictionary code out of range"));
                }
                ColumnData::Categorical {
                    codes,
                    dict: Arc::new(dict),
                }
            }
        };
        metas.push(ColumnMeta::new(name, ctype));
        columns.push(data);
    }
    c.finish("table section trailing bytes")?;

    let mut pc = Cursor::new(a.section(SEC_PARTITIONING)?);
    let n_parts = pc.u32("partition count")? as usize;
    if n_parts == 0 {
        return Err(FormatError::Corrupt("empty partitioning"));
    }
    let mut ends = Vec::with_capacity(n_parts.min(1 << 20));
    let mut prev = 0usize;
    for _ in 0..n_parts {
        let e = pc.usize("partition end")?;
        if e <= prev {
            return Err(FormatError::Corrupt("partition ends not increasing"));
        }
        ends.push(e);
        prev = e;
    }
    pc.finish("partitioning section trailing bytes")?;
    if prev != num_rows {
        return Err(FormatError::Corrupt("partitioning does not cover table"));
    }

    // All invariants `Table::new` / `Partitioning::from_ends` /
    // `PartitionedTable::new` assert are validated above, so construction
    // cannot panic.
    let table = Table::new(Schema::new(metas), columns);
    Ok(PartitionedTable::new(table, Partitioning::from_ends(ends)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColId;
    use crate::table::TableBuilder;

    fn sample_pt() -> PartitionedTable {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Numeric),
            ColumnMeta::new("tag", ColumnType::Categorical),
            ColumnMeta::new("day", ColumnType::Date),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..130 {
            b.push_row(
                &[i as f64 * 0.5, 7300.0 + i as f64],
                &[if i % 3 == 0 { "a" } else { "b" }],
            );
        }
        PartitionedTable::with_equal_partitions(b.finish(), 4)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ps3_format_test_{}_{tag}.ps3", std::process::id()));
        p
    }

    fn roundtrip(pt: &PartitionedTable, tag: &str) -> PartitionedTable {
        let mut w = ArtifactWriter::new();
        encode_partitioned_table(&mut w, pt);
        let path = temp_path(tag);
        w.write_to(&path).unwrap();
        let a = Artifact::open(&path).unwrap();
        let out = decode_partitioned_table(&a).unwrap();
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn table_roundtrips_bit_exact() {
        let pt = sample_pt();
        let back = roundtrip(&pt, "roundtrip");
        assert_eq!(back.num_partitions(), pt.num_partitions());
        assert_eq!(back.table().num_rows(), pt.table().num_rows());
        for (id, cm) in pt.table().schema().iter() {
            assert_eq!(back.table().schema().col(id).name, cm.name);
            assert_eq!(back.table().schema().col(id).ctype, cm.ctype);
            match (pt.table().column(id), back.table().column(id)) {
                (ColumnData::Numeric(a), ColumnData::Numeric(b)) => {
                    assert!(b.is_mapped(), "decoded numeric payload must be zero-copy");
                    assert_eq!(
                        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    );
                }
                (
                    ColumnData::Categorical { codes: a, dict: da },
                    ColumnData::Categorical { codes: b, dict: db },
                ) => {
                    assert!(b.is_mapped(), "decoded codes payload must be zero-copy");
                    assert_eq!(&**a, &**b);
                    assert_eq!(da.iter().collect::<Vec<_>>(), db.iter().collect::<Vec<_>>());
                }
                _ => panic!("column physical type changed in roundtrip"),
            }
        }
        for pid in pt.partitioning().ids() {
            assert_eq!(pt.rows(pid), back.rows(pid));
        }
    }

    #[test]
    fn nan_and_negative_zero_survive() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Numeric)]);
        let vals = vec![f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE];
        let t = Table::new(schema, vec![ColumnData::Numeric(vals.clone().into())]);
        let pt = PartitionedTable::with_equal_partitions(t, 2);
        let back = roundtrip(&pt, "nan");
        let got = back.table().numeric(ColId(0));
        for (a, b) in vals.iter().zip(got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn header_fields_are_as_documented() {
        let mut w = ArtifactWriter::new();
        encode_partitioned_table(&mut w, &sample_pt());
        let bytes = w.to_bytes();
        assert_eq!(&bytes[0..8], &MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 3);
        assert_eq!(
            u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            bytes.len() as u64
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let mut w = ArtifactWriter::new();
        encode_partitioned_table(&mut w, &sample_pt());
        let good = w.to_bytes();

        let open = |bytes: &[u8], tag: &str| -> Result<PartitionedTable, FormatError> {
            let path = temp_path(tag);
            std::fs::write(&path, bytes).unwrap();
            let r = Artifact::open(&path).and_then(|a| decode_partitioned_table(&a));
            std::fs::remove_file(&path).ok();
            r
        };

        // Bad magic.
        let mut b = good.clone();
        b[0] ^= 0xff;
        assert!(matches!(open(&b, "magic"), Err(FormatError::BadMagic)));

        // Version bump.
        let mut b = good.clone();
        b[8] = 9;
        assert!(matches!(
            open(&b, "version"),
            Err(FormatError::UnsupportedVersion { found: 9 })
        ));

        // Truncation (also trips the file-length field).
        assert!(matches!(
            open(&good[..good.len() - 9], "trunc"),
            Err(FormatError::Truncated(_))
        ));
        assert!(matches!(
            open(&good[..40], "trunc_hdr"),
            Err(FormatError::Truncated(_))
        ));

        // Payload bit flip → checksum mismatch on that section.
        let mut b = good.clone();
        let last = b.len() - 1;
        b[last] ^= 0x40;
        assert!(matches!(
            open(&b, "flip"),
            Err(FormatError::ChecksumMismatch { .. })
        ));

        // Section-table bit flip → table checksum mismatch.
        let mut b = good.clone();
        b[HEADER_LEN + 8] ^= 0x01;
        assert!(matches!(
            open(&b, "tableflip"),
            Err(FormatError::ChecksumMismatch {
                section: SECTION_TABLE
            })
        ));
    }

    #[test]
    fn misaligned_section_offset_is_rejected() {
        // Hand-build a 1-section artifact whose section offset is not
        // 64-aligned, with checksums recomputed so alignment is the first
        // failing check.
        let payload = vec![0u8; 8];
        let offset: u64 = 100; // not 64-aligned
        let mut table = Vec::new();
        table.extend_from_slice(&7u32.to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes());
        table.extend_from_slice(&offset.to_le_bytes());
        table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        table.extend_from_slice(&fnv1a(&payload).to_le_bytes());

        let file_len = 108u64;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&file_len.to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&table).to_le_bytes());
        bytes.resize(HEADER_LEN, 0);
        bytes.extend_from_slice(&table);
        bytes.resize(100, 0);
        bytes.extend_from_slice(&payload);

        let path = temp_path("misaligned");
        std::fs::write(&path, &bytes).unwrap();
        let r = Artifact::open(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(r, Err(FormatError::Misaligned { section: 7 })));
    }

    #[test]
    fn missing_section_is_typed() {
        let mut w = ArtifactWriter::new();
        w.add_section(SEC_TABLE, vec![1, 2, 3]);
        let path = temp_path("missing");
        w.write_to(&path).unwrap();
        let a = Artifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            a.section(SEC_STATS),
            Err(FormatError::MissingSection { kind: SEC_STATS })
        ));
    }

    #[test]
    fn enc_cursor_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(1 << 40);
        e.f64(-0.0);
        e.str("hello");
        e.blob(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut c = Cursor::new(&bytes);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(c.u64("c").unwrap(), 1 << 40);
        assert_eq!(c.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.str("e").unwrap(), "hello");
        assert_eq!(c.blob("f").unwrap(), &[1, 2, 3]);
        c.finish("g").unwrap();
        assert!(matches!(
            Cursor::new(&bytes[..2]).u32("short"),
            Err(FormatError::Truncated("short"))
        ));
    }
}
