//! The [`Table`]: a schema plus equally-long columns.

use std::sync::Arc;

use crate::column::{ColumnData, Dictionary};
use crate::schema::{ColId, ColumnType, Schema};

/// An immutable columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<ColumnData>,
    num_rows: usize,
}

impl Table {
    /// Assemble a table from a schema and matching columns.
    ///
    /// # Panics
    /// Panics if the number of columns or any column length disagrees with
    /// the schema, or if a column's physical representation does not match
    /// its declared type.
    pub fn new(schema: Schema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let num_rows = columns.first().map_or(0, ColumnData::len);
        for (id, meta) in schema.iter() {
            let col = &columns[id.index()];
            assert_eq!(col.len(), num_rows, "column {} length mismatch", meta.name);
            let physical_ok = match meta.ctype {
                ColumnType::Numeric | ColumnType::Date => col.as_numeric().is_some(),
                ColumnType::Categorical => col.as_categorical().is_some(),
            };
            assert!(physical_ok, "column {} physical type mismatch", meta.name);
        }
        Self {
            schema: Arc::new(schema),
            columns,
            num_rows,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Data of column `id`.
    pub fn column(&self, id: ColId) -> &ColumnData {
        &self.columns[id.index()]
    }

    /// Numeric data of column `id`.
    ///
    /// # Panics
    /// Panics if the column is categorical; callers consult the schema first.
    pub fn numeric(&self, id: ColId) -> &[f64] {
        self.columns[id.index()]
            .as_numeric()
            .unwrap_or_else(|| panic!("column {} is not numeric", self.schema.col(id).name))
    }

    /// Codes + dictionary of categorical column `id`.
    ///
    /// # Panics
    /// Panics if the column is numeric.
    pub fn categorical(&self, id: ColId) -> (&[u32], &Dictionary) {
        self.columns[id.index()]
            .as_categorical()
            .unwrap_or_else(|| panic!("column {} is not categorical", self.schema.col(id).name))
    }

    /// Produce a new table whose row `i` is this table's row `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> Table {
        assert_eq!(perm.len(), self.num_rows, "permutation length mismatch");
        let columns = self.columns.iter().map(|c| c.permute(perm)).collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            num_rows: self.num_rows,
        }
    }
}

/// Row-oriented convenience builder, used by tests and small examples.
///
/// Dataset generators build columns directly; this builder trades speed for
/// ergonomics.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    numeric: Vec<Vec<f64>>,
    categorical: Vec<(Vec<u32>, Dictionary)>,
    /// For each schema column: (is_numeric, index into the matching vec above).
    slots: Vec<(bool, usize)>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        let mut slots = Vec::with_capacity(schema.len());
        for (_, meta) in schema.iter() {
            if meta.ctype.is_numeric_like() {
                slots.push((true, numeric.len()));
                numeric.push(Vec::new());
            } else {
                slots.push((false, categorical.len()));
                categorical.push((Vec::new(), Dictionary::new()));
            }
        }
        Self {
            schema,
            numeric,
            categorical,
            slots,
            rows: 0,
        }
    }

    /// Append one row given as `(numeric values in schema order, categorical
    /// strings in schema order)`.
    pub fn push_row(&mut self, numerics: &[f64], categoricals: &[&str]) {
        let (mut ni, mut ci) = (0, 0);
        for &(is_num, slot) in &self.slots {
            if is_num {
                self.numeric[slot].push(numerics[ni]);
                ni += 1;
            } else {
                let (codes, dict) = &mut self.categorical[slot];
                codes.push(dict.intern(categoricals[ci]));
                ci += 1;
            }
        }
        assert_eq!(ni, numerics.len(), "too many numeric values for row");
        assert_eq!(
            ci,
            categoricals.len(),
            "too many categorical values for row"
        );
        self.rows += 1;
    }

    /// Finish and produce the immutable [`Table`].
    pub fn finish(self) -> Table {
        let mut numeric = self.numeric.into_iter();
        let mut categorical = self.categorical.into_iter();
        let columns = self
            .slots
            .iter()
            .map(|&(is_num, _)| {
                if is_num {
                    ColumnData::Numeric(numeric.next().expect("numeric slot").into())
                } else {
                    let (codes, dict) = categorical.next().expect("categorical slot");
                    ColumnData::Categorical {
                        codes: codes.into(),
                        dict: Arc::new(dict),
                    }
                }
            })
            .collect();
        Table::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("qty", ColumnType::Numeric),
            ColumnMeta::new("flag", ColumnType::Categorical),
            ColumnMeta::new("when", ColumnType::Date),
        ])
    }

    fn sample() -> Table {
        let mut b = TableBuilder::new(schema());
        b.push_row(&[1.0, 100.0], &["A"]);
        b.push_row(&[2.0, 101.0], &["B"]);
        b.push_row(&[3.0, 102.0], &["A"]);
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.numeric(ColId(0)), &[1.0, 2.0, 3.0]);
        assert_eq!(t.numeric(ColId(2)), &[100.0, 101.0, 102.0]);
        let (codes, dict) = t.categorical(ColId(1));
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.value(0), "A");
    }

    #[test]
    fn permute_reorders_all_columns() {
        let t = sample().permute(&[2, 1, 0]);
        assert_eq!(t.numeric(ColId(0)), &[3.0, 2.0, 1.0]);
        let (codes, _) = t.categorical(ColId(1));
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(t.numeric(ColId(2)), &[102.0, 101.0, 100.0]);
    }

    #[test]
    fn permute_shares_dictionary_allocation() {
        // Layout exploration permutes tables freely; a deep dictionary
        // copy per candidate layout would dominate. Assert the *same*
        // allocation rides along, not an equal one.
        let original = sample();
        let permuted = original.permute(&[2, 1, 0]);
        let dict_of = |t: &Table| match t.column(ColId(1)) {
            ColumnData::Categorical { dict, .. } => Arc::clone(dict),
            _ => unreachable!("column 1 is categorical"),
        };
        assert!(
            Arc::ptr_eq(&dict_of(&original), &dict_of(&permuted)),
            "permute must share the dictionary Arc, not deep-copy it"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_rejected() {
        Table::new(
            schema(),
            vec![
                ColumnData::Numeric(vec![1.0].into()),
                ColumnData::Categorical {
                    codes: vec![0, 1].into(),
                    dict: Arc::new(Dictionary::new()),
                },
                ColumnData::Numeric(vec![1.0].into()),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "is not numeric")]
    fn typed_access_checks() {
        sample().numeric(ColId(1));
    }
}
