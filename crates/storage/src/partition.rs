//! Division of a table's row space into contiguous partitions.

use std::ops::Range;

use crate::table::Table;

/// Index of a partition within a [`Partitioning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub usize);

impl PartitionId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Contiguous row ranges covering `0..num_rows` without gaps or overlap.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Exclusive end row of each partition; starts are implied.
    ends: Vec<usize>,
}

impl Partitioning {
    /// Split `num_rows` rows into `num_partitions` near-equal contiguous
    /// partitions (the remainder spreads one extra row over the first few).
    ///
    /// # Panics
    /// Panics when asked for zero partitions or more partitions than rows.
    pub fn equal(num_rows: usize, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        assert!(
            num_partitions <= num_rows,
            "more partitions ({num_partitions}) than rows ({num_rows})"
        );
        let base = num_rows / num_partitions;
        let extra = num_rows % num_partitions;
        let mut ends = Vec::with_capacity(num_partitions);
        let mut cursor = 0;
        for i in 0..num_partitions {
            cursor += base + usize::from(i < extra);
            ends.push(cursor);
        }
        debug_assert_eq!(cursor, num_rows);
        Self { ends }
    }

    /// Build directly from explicit partition end offsets.
    ///
    /// # Panics
    /// Panics if ends are not strictly increasing.
    pub fn from_ends(ends: Vec<usize>) -> Self {
        assert!(!ends.is_empty(), "need at least one partition");
        for w in ends.windows(2) {
            assert!(w[0] < w[1], "partition ends must be strictly increasing");
        }
        Self { ends }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether there are no partitions (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Row range of partition `pid`.
    pub fn rows(&self, pid: PartitionId) -> Range<usize> {
        let start = if pid.0 == 0 { 0 } else { self.ends[pid.0 - 1] };
        start..self.ends[pid.0]
    }

    /// Total number of rows covered.
    pub fn num_rows(&self) -> usize {
        *self.ends.last().expect("non-empty partitioning")
    }

    /// Iterate over all partition ids.
    pub fn ids(&self) -> impl Iterator<Item = PartitionId> {
        (0..self.ends.len()).map(PartitionId)
    }
}

/// A table together with its partitioning: the unit the whole system works on.
#[derive(Debug, Clone)]
pub struct PartitionedTable {
    table: Table,
    partitioning: Partitioning,
}

impl PartitionedTable {
    /// Pair a table with a partitioning.
    ///
    /// # Panics
    /// Panics if the partitioning does not cover exactly the table's rows.
    pub fn new(table: Table, partitioning: Partitioning) -> Self {
        assert_eq!(
            partitioning.num_rows(),
            table.num_rows(),
            "partitioning covers {} rows but table has {}",
            partitioning.num_rows(),
            table.num_rows()
        );
        Self {
            table,
            partitioning,
        }
    }

    /// Split into `num_partitions` equal contiguous partitions.
    pub fn with_equal_partitions(table: Table, num_partitions: usize) -> Self {
        let p = Partitioning::equal(table.num_rows(), num_partitions);
        Self::new(table, p)
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitioning.len()
    }

    /// Row range of one partition.
    pub fn rows(&self, pid: PartitionId) -> Range<usize> {
        self.partitioning.rows(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;
    use crate::schema::{ColumnMeta, ColumnType, Schema};

    fn table(n: usize) -> Table {
        Table::new(
            Schema::new(vec![ColumnMeta::new("x", ColumnType::Numeric)]),
            vec![ColumnData::Numeric(
                (0..n).map(|i| i as f64).collect::<Vec<_>>().into(),
            )],
        )
    }

    #[test]
    fn equal_split_covers_everything() {
        let p = Partitioning::equal(10, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.rows(PartitionId(0)), 0..4);
        assert_eq!(p.rows(PartitionId(1)), 4..7);
        assert_eq!(p.rows(PartitionId(2)), 7..10);
        assert_eq!(p.num_rows(), 10);
    }

    #[test]
    fn exact_division() {
        let p = Partitioning::equal(100, 4);
        for pid in p.ids() {
            assert_eq!(p.rows(pid).len(), 25);
        }
    }

    #[test]
    fn single_partition() {
        let p = Partitioning::equal(5, 1);
        assert_eq!(p.rows(PartitionId(0)), 0..5);
    }

    #[test]
    #[should_panic(expected = "more partitions")]
    fn too_many_partitions() {
        Partitioning::equal(3, 4);
    }

    #[test]
    fn partitioned_table_row_ranges() {
        let pt = PartitionedTable::with_equal_partitions(table(12), 4);
        assert_eq!(pt.num_partitions(), 4);
        assert_eq!(pt.rows(PartitionId(3)), 9..12);
        let total: usize = pt.partitioning().ids().map(|p| pt.rows(p).len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_explicit_ends() {
        Partitioning::from_ends(vec![3, 3, 5]);
    }
}
