//! Memory mapping and typed slice views — the workspace's only `unsafe`
//! module.
//!
//! The zero-copy artifact format (`format`) stores column payloads as raw
//! little-endian machine words at 64-byte-aligned offsets. This module owns
//! the two dangerous steps between a file on disk and a `&[f64]` the kernels
//! can chunk:
//!
//! 1. [`Mmap`] — a read-only, private mapping of a whole file, created with
//!    a hand-declared `mmap(2)`/`munmap(2)` FFI (this workspace vendors or
//!    avoids every external crate, including `libc`; see `ps3_runtime::poll`
//!    for the same discipline applied to `poll(2)`). On non-Unix targets the
//!    type degrades to an owned, 8-byte-aligned buffer read with `std::fs`,
//!    so nothing above this module needs a `cfg`.
//! 2. [`typed_slice_at`] — the *only* pointer cast in the workspace: bytes
//!    at an offset reinterpreted as a `&[T]` for plain-old-data `T`.
//!
//! # Safety invariants
//!
//! Every `unsafe` block in this module relies on exactly these invariants,
//! checked where possible and documented where not:
//!
//! * **Validity.** [`Pod`] is a sealed trait implemented only for `u8`,
//!   `u32`, `u64` and `f64`: every bit pattern is a valid value, there is no
//!   padding, no niches, and no drop glue — so reinterpreting arbitrary
//!   mapped bytes can never create an invalid value.
//! * **Bounds.** [`typed_slice_at`] refuses (returns an error, never UB) any
//!   `offset`/`elems` pair whose byte range is not fully inside the mapping,
//!   using checked arithmetic so overflowing lengths cannot wrap into
//!   "in bounds".
//! * **Alignment.** The slice pointer is checked against `align_of::<T>()`
//!   at runtime. `mmap` returns page-aligned memory and the non-Unix
//!   fallback allocates `u64`s, so a 64-byte-aligned file offset is always
//!   sufficiently aligned in memory — but the check is on the *actual*
//!   pointer, not the convention.
//! * **Lifetime.** The returned slice borrows the [`Mmap`]; the mapping is
//!   unmapped only on drop, after every borrow has ended. [`Mmap`] is
//!   `Send + Sync` because the mapping is immutable (`PROT_READ` +
//!   `MAP_PRIVATE`) for its whole lifetime.
//! * **External mutation.** A private read-only mapping does not observe
//!   `write(2)`s made to the file afterwards on Linux in a guaranteed way
//!   (POSIX leaves it unspecified). Artifact files are written once via a
//!   temp-file + rename and never modified in place, which is the
//!   discipline `format` enforces; mutating an artifact while it is mapped
//!   is outside the supported contract (it can change slice *contents*, but
//!   never their bounds, so it stays memory-safe — reads may simply observe
//!   torn data).
//!
//! The corruption property tests (`tests/artifact_corruption.rs`) fuzz
//! bit-flipped, truncated and version-bumped artifacts through the full
//! decode path to confirm these checks hold: every malformed input is
//! rejected with a typed error before any slice is formed.

use std::fmt;
use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// Plain-old-data element types that may be viewed directly in mapped bytes.
///
/// Sealed: only `u8`, `u32`, `u64` and `f64` qualify. All four accept every
/// bit pattern, contain no padding, and have no drop glue — the precondition
/// for the cast in [`typed_slice_at`] being sound.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f64 {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_long, c_void};

    /// `PROT_READ`: pages may be read.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE`: copy-on-write, changes never reach the file.
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        /// `mmap(2)`. `off_t` is `c_long` on the LP64 Unix targets this
        /// workspace supports; the offset passed is always 0.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        /// `munmap(2)`.
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only private memory mapping of an entire file.
///
/// Unix targets map the file with `mmap(2)`; elsewhere the file is read into
/// an owned 8-byte-aligned buffer so the rest of the workspace is
/// platform-free. Empty files produce an empty mapping without touching the
/// OS.
pub struct Mmap {
    /// Base of the mapping (dangling and unused when `len == 0`).
    ptr: *const u8,
    /// Mapping length in bytes.
    len: usize,
    /// Non-Unix fallback: the buffer that owns the bytes (`u64` for 8-byte
    /// alignment). On Unix this field does not exist.
    #[cfg(not(unix))]
    _buf: Vec<u64>,
}

// SAFETY: the mapping is read-only (`PROT_READ`, `MAP_PRIVATE`) for its
// entire lifetime, so shared references from multiple threads observe
// immutable memory; no interior mutability exists.
unsafe impl Send for Mmap {}
// SAFETY: as above — all access is through `&self` into immutable pages.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;

        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file descriptor for `len` readable
        // bytes; PROT_READ + MAP_PRIVATE never aliases writable memory.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Read `file` into an owned aligned buffer (non-Unix stand-in).
    #[cfg(not(unix))]
    pub fn map(file: &File) -> io::Result<Self> {
        use std::io::Read;

        let mut bytes = Vec::new();
        let mut f = file;
        f.read_to_end(&mut bytes)?;
        let len = bytes.len();
        // Re-home the bytes in a u64 buffer for 8-byte alignment.
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: u64 -> u8 view of an owned buffer of sufficient length.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, buf.len() * 8) };
        dst[..len].copy_from_slice(&bytes);
        Ok(Self {
            ptr: buf.as_ptr() as *const u8,
            len,
            _buf: buf,
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is valid for `len` readable bytes for the lifetime
        // of `self` (unmapped only in Drop); u8 has no alignment or validity
        // requirements.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: (ptr, len) is exactly the region returned by mmap and
            // has not been unmapped before; failure is ignorable on drop.
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// Why a requested typed view of mapped bytes was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapSliceError {
    /// The byte range falls (partly) outside the mapping.
    OutOfBounds,
    /// The slice start is not aligned for the element type.
    Misaligned,
}

/// View `elems` elements of `T` starting `offset` bytes into the mapping.
///
/// This is the single place raw mapped bytes become a typed slice. It
/// *checks* (never assumes) bounds with overflow-safe arithmetic and the
/// actual pointer alignment; on any violation the caller gets a typed error
/// and no slice is ever formed.
pub fn typed_slice_at<T: Pod>(
    mmap: &Mmap,
    offset: usize,
    elems: usize,
) -> Result<&[T], MapSliceError> {
    let byte_len = elems
        .checked_mul(std::mem::size_of::<T>())
        .ok_or(MapSliceError::OutOfBounds)?;
    let end = offset
        .checked_add(byte_len)
        .ok_or(MapSliceError::OutOfBounds)?;
    if end > mmap.len {
        return Err(MapSliceError::OutOfBounds);
    }
    if elems == 0 {
        return Ok(&[]);
    }
    // In bounds per the checks above, so the add cannot leave the mapping.
    let ptr = mmap.ptr.wrapping_add(offset);
    if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(MapSliceError::Misaligned);
    }
    // SAFETY: `ptr` is aligned (checked above) and valid for `byte_len`
    // readable bytes inside the live mapping (checked above); `T: Pod`
    // guarantees every bit pattern is a valid `T`; the mapping is immutable
    // and outlives the returned borrow.
    Ok(unsafe { std::slice::from_raw_parts(ptr as *const T, elems) })
}

/// Column payload storage: an owned vector or a typed window into a shared
/// mapping.
///
/// `Bytes<T>` derefs to `&[T]`, so every consumer of column data —
/// `chunks64`, the compiled mask kernels, sketch building, feature
/// extraction — works identically on owned and mapped storage. Cloning a
/// mapped payload clones an `Arc`, not the data.
pub enum Bytes<T: Pod> {
    /// Heap-owned values (built tables, permutations, tests).
    Owned(Vec<T>),
    /// A validated window into a mapped artifact.
    Mapped {
        /// The mapping that owns the bytes.
        mmap: Arc<Mmap>,
        /// Byte offset of the first element.
        offset: usize,
        /// Number of elements.
        elems: usize,
        /// `Bytes<T>` is invariant over its element type.
        _marker: PhantomData<T>,
    },
}

impl<T: Pod> Bytes<T> {
    /// A mapped window, validated once here (bounds + alignment); after
    /// construction every access is infallible.
    pub fn mapped(mmap: Arc<Mmap>, offset: usize, elems: usize) -> Result<Self, MapSliceError> {
        typed_slice_at::<T>(&mmap, offset, elems)?;
        Ok(Self::Mapped {
            mmap,
            offset,
            elems,
            _marker: PhantomData,
        })
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Bytes::Owned(v) => v,
            Bytes::Mapped {
                mmap,
                offset,
                elems,
                ..
            } => typed_slice_at(mmap, *offset, *elems).expect("validated at construction"),
        }
    }

    /// Whether this payload is backed by a mapping (zero-copy) rather than
    /// an owned allocation.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Bytes::Mapped { .. })
    }
}

impl<T: Pod> Deref for Bytes<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Bytes<T> {
    fn from(v: Vec<T>) -> Self {
        Bytes::Owned(v)
    }
}

impl<T: Pod> FromIterator<T> for Bytes<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Bytes::Owned(iter.into_iter().collect())
    }
}

impl<T: Pod> Clone for Bytes<T> {
    fn clone(&self) -> Self {
        match self {
            Bytes::Owned(v) => Bytes::Owned(v.clone()),
            Bytes::Mapped {
                mmap,
                offset,
                elems,
                ..
            } => Bytes::Mapped {
                mmap: Arc::clone(mmap),
                offset: *offset,
                elems: *elems,
                _marker: PhantomData,
            },
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for Bytes<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn mapped_file(bytes: &[u8]) -> Mmap {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "ps3_mmap_test_{}_{}",
            std::process::id(),
            bytes.len()
        ));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(bytes).unwrap();
        }
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        m
    }

    #[test]
    fn maps_and_reads_back() {
        let data: Vec<u8> = (0..=255).collect();
        let m = mapped_file(&data);
        assert_eq!(m.len(), 256);
        assert_eq!(m.as_slice(), &data[..]);
    }

    #[test]
    fn empty_file_maps_empty() {
        let m = mapped_file(&[]);
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), &[] as &[u8]);
        assert_eq!(typed_slice_at::<f64>(&m, 0, 0), Ok(&[] as &[f64]));
    }

    #[test]
    fn typed_views_decode_le_values() {
        let mut bytes = Vec::new();
        for v in [1.5f64, -2.25, f64::NAN] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let m = mapped_file(&bytes);
        let s = typed_slice_at::<f64>(&m, 0, 3).unwrap();
        assert_eq!(s[0], 1.5);
        assert_eq!(s[1], -2.25);
        assert!(s[2].is_nan());
    }

    #[test]
    fn bounds_are_checked() {
        let m = mapped_file(&[0u8; 64]);
        assert_eq!(
            typed_slice_at::<f64>(&m, 0, 9),
            Err(MapSliceError::OutOfBounds)
        );
        assert_eq!(
            typed_slice_at::<f64>(&m, 64, 1),
            Err(MapSliceError::OutOfBounds)
        );
        // Overflowing byte lengths cannot wrap into bounds.
        assert_eq!(
            typed_slice_at::<u64>(&m, 0, usize::MAX / 4),
            Err(MapSliceError::OutOfBounds)
        );
        assert_eq!(
            typed_slice_at::<u64>(&m, usize::MAX, 1),
            Err(MapSliceError::OutOfBounds)
        );
    }

    #[test]
    fn misalignment_is_rejected() {
        let m = mapped_file(&[0u8; 64]);
        // mmap bases are page-aligned, so offset 4 is misaligned for f64 …
        assert_eq!(
            typed_slice_at::<f64>(&m, 4, 1),
            Err(MapSliceError::Misaligned)
        );
        // … but fine for u32.
        assert!(typed_slice_at::<u32>(&m, 4, 1).is_ok());
    }

    #[test]
    fn bytes_owned_and_mapped_agree() {
        let vals = [3.0f64, 1.0, 4.0, 1.0, 5.0];
        let mut raw = Vec::new();
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let m = Arc::new(mapped_file(&raw));
        let mapped = Bytes::<f64>::mapped(Arc::clone(&m), 0, 5).unwrap();
        let owned: Bytes<f64> = vals.to_vec().into();
        assert_eq!(&*mapped, &*owned);
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        // Clone of a mapped payload shares the mapping.
        let c = mapped.clone();
        assert_eq!(&*c, &vals[..]);
    }

    #[test]
    fn bytes_mapped_validates_eagerly() {
        let m = Arc::new(mapped_file(&[0u8; 16]));
        assert_eq!(
            Bytes::<f64>::mapped(Arc::clone(&m), 0, 3).unwrap_err(),
            MapSliceError::OutOfBounds
        );
        assert_eq!(
            Bytes::<f64>::mapped(m, 1, 1).unwrap_err(),
            MapSliceError::Misaligned
        );
    }
}
