//! Table schemas: column names, types, and lookup by name.

use std::fmt;

/// Index of a column within a [`Schema`].
///
/// A newtype rather than a bare `usize` so that column indices, partition ids
/// and row indices cannot be confused for one another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub usize);

impl ColId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col#{}", self.0)
    }
}

/// The logical type of a column.
///
/// The paper distinguishes numeric, date, and string/categorical columns
/// (§2.2): comparisons apply to numeric and date columns, equality/`IN` to
/// categorical ones. Dates are stored as days-since-epoch numerics, so
/// `Date` behaves like `Numeric` everywhere except in workload generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit float storage; covers integers and reals.
    Numeric,
    /// Days since an arbitrary epoch, stored as numerics.
    Date,
    /// Dictionary-encoded strings.
    Categorical,
}

impl ColumnType {
    /// Whether values of this type are ordered and support range predicates.
    pub fn is_numeric_like(self) -> bool {
        matches!(self, ColumnType::Numeric | ColumnType::Date)
    }
}

/// Metadata for a single column.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    /// Column name, unique within the schema.
    pub name: String,
    /// Logical type.
    pub ctype: ColumnType,
}

impl ColumnMeta {
    /// Create metadata for a column.
    pub fn new(name: impl Into<String>, ctype: ColumnType) -> Self {
        Self {
            name: name.into(),
            ctype,
        }
    }
}

/// An ordered collection of column metadata.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Build a schema from column metadata.
    ///
    /// # Panics
    /// Panics if two columns share a name; schemas are small and built once,
    /// so the check is cheap and failing fast beats debugging silent lookup
    /// mismatches later.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Metadata of column `id`.
    pub fn col(&self, id: ColId) -> &ColumnMeta {
        &self.columns[id.0]
    }

    /// Look up a column id by name.
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.columns.iter().position(|c| c.name == name).map(ColId)
    }

    /// Look up a column id by name, panicking with a useful message if absent.
    pub fn expect_col(&self, name: &str) -> ColId {
        self.col_id(name)
            .unwrap_or_else(|| panic!("no column named {name:?} in schema"))
    }

    /// Iterate over `(ColId, &ColumnMeta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColId, &ColumnMeta)> {
        self.columns.iter().enumerate().map(|(i, m)| (ColId(i), m))
    }

    /// All column ids of a given type.
    pub fn cols_of_type(&self, ctype: ColumnType) -> Vec<ColId> {
        self.iter()
            .filter(|(_, m)| m.ctype == ctype)
            .map(|(id, _)| id)
            .collect()
    }

    /// All column ids whose type is numeric-like (numeric or date).
    pub fn numeric_like_cols(&self) -> Vec<ColId> {
        self.iter()
            .filter(|(_, m)| m.ctype.is_numeric_like())
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("price", ColumnType::Numeric),
            ColumnMeta::new("ship_date", ColumnType::Date),
            ColumnMeta::new("flag", ColumnType::Categorical),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.col_id("price"), Some(ColId(0)));
        assert_eq!(s.col_id("flag"), Some(ColId(2)));
        assert_eq!(s.col_id("nope"), None);
        assert_eq!(s.expect_col("ship_date"), ColId(1));
    }

    #[test]
    fn type_partitions() {
        let s = sample();
        assert_eq!(s.numeric_like_cols(), vec![ColId(0), ColId(1)]);
        assert_eq!(s.cols_of_type(ColumnType::Categorical), vec![ColId(2)]);
        assert!(ColumnType::Date.is_numeric_like());
        assert!(!ColumnType::Categorical.is_numeric_like());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Numeric),
            ColumnMeta::new("x", ColumnType::Categorical),
        ]);
    }

    #[test]
    fn iter_covers_all_columns() {
        let s = sample();
        let names: Vec<&str> = s.iter().map(|(_, m)| m.name.as_str()).collect();
        assert_eq!(names, vec!["price", "ship_date", "flag"]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
