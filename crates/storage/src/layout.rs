//! Data layouts: the row order a dataset was ingested in.
//!
//! PS3 is explicitly *layout agnostic* (§2.1) — it never re-partitions data —
//! but the evaluation studies how performance varies with the layout
//! (§5.5.1): sorted by one or more columns, or fully random. This module
//! materializes those layouts by permuting a table's rows; partition
//! boundaries stay fixed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::schema::ColId;
use crate::table::Table;

/// A row ordering for a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// Keep rows exactly as generated/ingested.
    Ingest,
    /// Stable sort by the given columns, most significant first
    /// (e.g. TPC-DS* sorted by `(year, month, day)`).
    SortedBy(Vec<ColId>),
    /// Uniform random shuffle with a fixed seed.
    Random { seed: u64 },
}

impl Layout {
    /// Sorted-by-one-column convenience.
    pub fn sorted(col: ColId) -> Self {
        Layout::SortedBy(vec![col])
    }

    /// Apply the layout, returning a re-ordered copy of the table.
    pub fn apply(&self, table: &Table) -> Table {
        match self {
            Layout::Ingest => table.clone(),
            Layout::SortedBy(cols) => {
                assert!(!cols.is_empty(), "SortedBy needs at least one column");
                let mut perm: Vec<usize> = (0..table.num_rows()).collect();
                // Stable sort so ties keep ingest order, matching how a bulk
                // load into a sorted store behaves.
                perm.sort_by(|&a, &b| {
                    for &c in cols {
                        let col = table.column(c);
                        let ord = col.sort_key(a).cmp(&col.sort_key(b));
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                table.permute(&perm)
            }
            Layout::Random { seed } => {
                let mut perm: Vec<usize> = (0..table.num_rows()).collect();
                perm.shuffle(&mut StdRng::seed_from_u64(*seed));
                table.permute(&perm)
            }
        }
    }

    /// A short human-readable label for reports.
    pub fn label(&self, table: &Table) -> String {
        match self {
            Layout::Ingest => "ingest".to_owned(),
            Layout::SortedBy(cols) => {
                let names: Vec<&str> = cols
                    .iter()
                    .map(|&c| table.schema().col(c).name.as_str())
                    .collect();
                format!("sorted:{}", names.join(","))
            }
            Layout::Random { seed } => format!("random:{seed}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, ColumnType, Schema};
    use crate::table::TableBuilder;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Numeric),
            ColumnMeta::new("tag", ColumnType::Categorical),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(&[3.0], &["b"]);
        b.push_row(&[1.0], &["a"]);
        b.push_row(&[2.0], &["b"]);
        b.push_row(&[1.0], &["c"]);
        b.finish()
    }

    #[test]
    fn sorted_by_numeric() {
        let t = Layout::sorted(ColId(0)).apply(&sample());
        assert_eq!(t.numeric(ColId(0)), &[1.0, 1.0, 2.0, 3.0]);
        // Stability: the two x=1 rows keep ingest order (tags "a" then "c").
        let (codes, dict) = t.categorical(ColId(1));
        assert_eq!(dict.value(codes[0]), "a");
        assert_eq!(dict.value(codes[1]), "c");
    }

    #[test]
    fn sorted_by_categorical_then_numeric() {
        let t = Layout::SortedBy(vec![ColId(1), ColId(0)]).apply(&sample());
        let (codes, dict) = t.categorical(ColId(1));
        let tags: Vec<&str> = codes.iter().map(|&c| dict.value(c)).collect();
        assert_eq!(tags, vec!["a", "b", "b", "c"]);
        assert_eq!(t.numeric(ColId(0)), &[1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn random_is_seeded_and_a_permutation() {
        let a = Layout::Random { seed: 9 }.apply(&sample());
        let b = Layout::Random { seed: 9 }.apply(&sample());
        assert_eq!(a.numeric(ColId(0)), b.numeric(ColId(0)));
        let mut vals = a.numeric(ColId(0)).to_vec();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn ingest_is_identity() {
        let t = Layout::Ingest.apply(&sample());
        assert_eq!(t.numeric(ColId(0)), sample().numeric(ColId(0)));
    }

    #[test]
    fn labels() {
        let t = sample();
        assert_eq!(Layout::Ingest.label(&t), "ingest");
        assert_eq!(Layout::sorted(ColId(1)).label(&t), "sorted:tag");
        assert_eq!(Layout::Random { seed: 3 }.label(&t), "random:3");
    }
}
