//! Literal values appearing in predicates and generated data.

use std::fmt;

/// A literal constant: the `v` in a predicate clause `c op v` (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric or date literal (dates are days since epoch).
    Number(f64),
    /// String literal for categorical columns.
    Str(String),
}

impl Value {
    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Number(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Number(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Number(3.0));
        assert_eq!(Value::from(2.5f64), Value::Number(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::Number(1.5).as_number(), Some(1.5));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Number(1.0).as_str(), None);
        assert_eq!(Value::Str("a".into()).as_number(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Number(2.0).to_string(), "2");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
    }
}
