//! Algorithm 4 (training-label generation) and the §4.3 threshold schedule.
//!
//! Each of the k models is a binary decision "contribution > tᵢ" trained as a
//! *regressor* so that per-query class imbalance can be rebalanced through
//! label magnitudes: positives get `+√(1/P)` and negatives `−√(1/(n−P))`
//! where `P` is the query's positive count — every query then contributes
//! equal squared label mass for each class, and the natural decision rule at
//! test time is `prediction > 0`.

/// Generate Algorithm-4 labels for one query.
///
/// `contributions[j]` is partition j's contribution (§4.3) to this query;
/// the label is positive iff `contribution > threshold`.
pub fn make_labels(contributions: &[f64], threshold: f64) -> Vec<f64> {
    let n = contributions.len();
    let positive = contributions.iter().filter(|&&c| c > threshold).count();
    let pos_mag = if positive > 0 {
        (1.0 / positive as f64).sqrt()
    } else {
        0.0
    };
    let neg = n - positive;
    let neg_mag = if neg > 0 {
        (1.0 / neg as f64).sqrt()
    } else {
        0.0
    };
    contributions
        .iter()
        .map(|&c| if c > threshold { pos_mag } else { -neg_mag })
        .collect()
}

/// Choose the k model thresholds from pooled training contributions.
///
/// §4.3: bin boundaries are exponentially spaced — the number of partitions
/// satisfying model i shrinks geometrically from "all with non-zero
/// contribution" (model 1, t₁ = 0) down to "top 1%" (model k). We realize
/// this by picking pass-fractions `fᵢ = f₁·(f_k/f₁)^((i−1)/(k−1))` with
/// `f₁ = P(c > 0)` and `f_k = min(1%, f₁)`, then reading thresholds off the
/// pooled contribution distribution.
pub fn choose_thresholds(pooled: &[f64], k: usize) -> Vec<f64> {
    assert!(k >= 1, "need at least one model");
    let n = pooled.len();
    if n == 0 {
        return vec![0.0; k];
    }
    let mut sorted: Vec<f64> = pooled.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending
    let f1 = sorted.iter().filter(|&&c| c > 0.0).count() as f64 / n as f64;
    if f1 == 0.0 {
        return vec![0.0; k];
    }
    let fk = f1.min(0.01);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let frac = if k == 1 {
            f1
        } else {
            f1 * (fk / f1).powf(i as f64 / (k - 1) as f64)
        };
        if i == 0 {
            // Model 1 is exactly "non-zero contribution".
            out.push(0.0);
            continue;
        }
        // The threshold admitting the top `frac` of the pool.
        let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
        let t = sorted[idx].max(0.0);
        // Keep thresholds non-decreasing even on lumpy distributions.
        let prev = *out.last().expect("non-empty");
        out.push(t.max(prev));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn labels_balance_squared_mass() {
        let contributions = [0.9, 0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let y = make_labels(&contributions, 0.5);
        let pos_mass: f64 = y.iter().filter(|&&v| v > 0.0).map(|v| v * v).sum();
        let neg_mass: f64 = y.iter().filter(|&&v| v < 0.0).map(|v| v * v).sum();
        assert!((pos_mass - 1.0).abs() < 1e-12);
        assert!((neg_mass - 1.0).abs() < 1e-12);
        assert_eq!(y.iter().filter(|&&v| v > 0.0).count(), 2);
    }

    #[test]
    fn all_negative_query() {
        let y = make_labels(&[0.0, 0.0, 0.0], 0.0);
        assert!(y.iter().all(|&v| v < 0.0));
    }

    #[test]
    fn all_positive_query() {
        let y = make_labels(&[0.5, 0.5], 0.0);
        assert!(y.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn thresholds_monotone_and_anchored() {
        // 10% of pairs have positive contribution, uniformly spread.
        let pooled: Vec<f64> = (0..1000)
            .map(|i| if i < 100 { (i + 1) as f64 / 100.0 } else { 0.0 })
            .collect();
        let t = choose_thresholds(&pooled, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 0.0);
        for w in t.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Final threshold keeps roughly the top 1% (≈ 10 pairs).
        let top = pooled.iter().filter(|&&c| c > t[3]).count();
        assert!(top <= 25, "top-1% threshold admitted {top} of 1000");
        assert!(top >= 1);
    }

    #[test]
    fn degenerate_pools() {
        assert_eq!(choose_thresholds(&[], 3), vec![0.0; 3]);
        assert_eq!(choose_thresholds(&[0.0, 0.0], 3), vec![0.0; 3]);
        let t = choose_thresholds(&[1.0], 1);
        assert_eq!(t, vec![0.0]);
    }

    proptest! {
        #[test]
        fn pass_counts_decay(contribs in prop::collection::vec(0.0f64..1.0, 100..500)) {
            let t = choose_thresholds(&contribs, 4);
            let counts: Vec<usize> = t
                .iter()
                .map(|&ti| contribs.iter().filter(|&&c| c > ti).count())
                .collect();
            for w in counts.windows(2) {
                prop_assert!(w[1] <= w[0], "counts must shrink: {:?}", counts);
            }
        }

        #[test]
        fn labels_sign_matches_threshold(contribs in prop::collection::vec(0.0f64..1.0, 2..100),
                                          thr in 0.0f64..1.0) {
            let y = make_labels(&contribs, thr);
            for (c, l) in contribs.iter().zip(&y) {
                prop_assert_eq!(*c > thr, *l > 0.0);
            }
        }
    }
}
