//! The boosting loop: squared-error gradient boosting with shrinkage, row
//! and column subsampling, and gain-based feature importance.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::binner::Binner;
use crate::tree::{SplitRecord, Tree, TreeParams};

/// Training hyperparameters, defaulting to values that behave like a small
/// XGBoost configuration at PS3's data scale (hundreds of partitions × a few
/// hundred features).
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Shrinkage η.
    pub learning_rate: f64,
    /// L2 regularization λ.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
    /// Quantile bins per feature (≤ 256).
    pub max_bins: usize,
    /// Fraction of rows sampled per tree.
    pub subsample: f64,
    /// Fraction of features sampled per tree.
    pub colsample: f64,
    /// RNG seed for the subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            n_trees: 40,
            max_depth: 4,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            max_bins: 64,
            subsample: 1.0,
            colsample: 0.8,
            seed: 0,
        }
    }
}

/// A trained gradient-boosted model.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<Tree>,
    base: f64,
    learning_rate: f64,
    /// Accumulated split gain per feature — XGBoost's "gain" importance [9].
    importance: Vec<f64>,
}

impl Gbdt {
    /// Train on row-major `data` with squared-error loss against `labels`.
    ///
    /// # Panics
    /// Panics on empty data or a row-count mismatch.
    pub fn train(data: &[Vec<f64>], labels: &[f64], params: &GbdtParams) -> Self {
        assert!(!data.is_empty(), "empty training set");
        assert_eq!(data.len(), labels.len(), "row/label count mismatch");
        let n = data.len();
        let num_features = data[0].len();

        let binner = Binner::fit(data, params.max_bins);
        let binned = binner.bin_dataset(data);

        let base = labels.iter().sum::<f64>() / n as f64;
        let mut preds = vec![base; n];
        let mut rng = StdRng::seed_from_u64(params.seed);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            lambda: params.lambda,
            gamma: params.gamma,
            min_child_weight: params.min_child_weight,
        };

        let all_rows: Vec<u32> = (0..n as u32).collect();
        let all_features: Vec<usize> = (0..num_features).collect();
        let hess = vec![1.0; n];
        let mut grad = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut importance = vec![0.0; num_features];
        let mut splits: Vec<SplitRecord> = Vec::new();

        for _ in 0..params.n_trees {
            for i in 0..n {
                grad[i] = preds[i] - labels[i];
            }
            let rows: Vec<u32> = if params.subsample < 1.0 {
                let take = ((n as f64 * params.subsample) as usize).max(2).min(n);
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(take);
                shuffled
            } else {
                all_rows.clone()
            };
            let features: Vec<usize> = if params.colsample < 1.0 {
                let take = ((num_features as f64 * params.colsample) as usize)
                    .max(1)
                    .min(num_features);
                let mut shuffled = all_features.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(take);
                shuffled
            } else {
                all_features.clone()
            };

            splits.clear();
            let tree = Tree::grow(
                &binned,
                &binner,
                &grad,
                &hess,
                &rows,
                &features,
                &tree_params,
                &mut splits,
            );
            if splits.is_empty() {
                // Residuals have no splittable structure left; further
                // rounds would only re-fit the same constant.
                break;
            }
            for s in &splits {
                importance[s.feature] += s.gain;
            }
            for (i, row) in data.iter().enumerate() {
                preds[i] += params.learning_rate * tree.predict_row(row);
            }
            trees.push(tree);
        }

        Self {
            trees,
            base,
            learning_rate: params.learning_rate,
            importance,
        }
    }

    /// Predict one raw feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut p = self.base;
        for t in &self.trees {
            p += self.learning_rate * t.predict_row(row);
        }
        p
    }

    /// Predict many rows.
    pub fn predict(&self, data: &[Vec<f64>]) -> Vec<f64> {
        data.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Gain-based feature importance (unnormalized; index = feature).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of trees actually grown.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The trees, for persistence.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// The base (mean-label) prediction.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The shrinkage applied per tree at prediction time.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Reassemble a model from persisted parts. Trees are assumed already
    /// validated via [`Tree::from_nodes`]; `importance` fixes the feature
    /// width (one slot per feature).
    pub fn from_raw_parts(
        trees: Vec<Tree>,
        base: f64,
        learning_rate: f64,
        importance: Vec<f64>,
    ) -> Self {
        Self {
            trees,
            base,
            learning_rate,
            importance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10·(x0 > 0.5 XOR x1 > 0.5) — needs depth ≥ 2 interactions.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let x0 = f64::from(i % 20) / 20.0;
            let x1 = f64::from(i / 20) / 20.0;
            let y = if (x0 > 0.5) != (x1 > 0.5) { 10.0 } else { 0.0 };
            data.push(vec![x0, x1]);
            labels.push(y);
        }
        (data, labels)
    }

    #[test]
    fn fits_linear_signal() {
        let data: Vec<Vec<f64>> = (0..200).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<f64> = (0..200).map(|i| 2.0 * f64::from(i) + 5.0).collect();
        let model = Gbdt::train(&data, &labels, &GbdtParams::default());
        let mse: f64 = data
            .iter()
            .zip(&labels)
            .map(|(r, &y)| (model.predict_row(r) - y).powi(2))
            .sum::<f64>()
            / 200.0;
        // Label variance is ~13,333; the fit must explain almost all of it.
        assert!(mse < 200.0, "mse {mse}");
    }

    #[test]
    fn fits_interactions() {
        let (data, labels) = xor_like();
        // Interactions need both features in every tree.
        let params = GbdtParams {
            n_trees: 60,
            max_depth: 3,
            colsample: 1.0,
            ..Default::default()
        };
        let model = Gbdt::train(&data, &labels, &params);
        let correct = data
            .iter()
            .zip(&labels)
            .filter(|(r, &y)| (model.predict_row(r) > 5.0) == (y > 5.0))
            .count();
        assert!(correct > 360, "only {correct}/400 correct");
    }

    #[test]
    fn importance_concentrates_on_signal_features() {
        // Feature 1 carries the signal; features 0 and 2 are noise-free
        // constants.
        let data: Vec<Vec<f64>> = (0..300).map(|i| vec![1.0, f64::from(i), 2.0]).collect();
        let labels: Vec<f64> = (0..300).map(|i| if i > 150 { 1.0 } else { 0.0 }).collect();
        let model = Gbdt::train(&data, &labels, &GbdtParams::default());
        let imp = model.feature_importance();
        assert!(imp[1] > 0.0);
        assert_eq!(imp[0], 0.0);
        assert_eq!(imp[2], 0.0);
    }

    #[test]
    fn constant_labels_stop_early() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let labels = vec![4.2; 100];
        let model = Gbdt::train(&data, &labels, &GbdtParams::default());
        assert_eq!(model.num_trees(), 0);
        assert!((model.predict_row(&[7.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, labels) = xor_like();
        let params = GbdtParams {
            subsample: 0.7,
            colsample: 1.0,
            seed: 9,
            ..Default::default()
        };
        let a = Gbdt::train(&data, &labels, &params);
        let b = Gbdt::train(&data, &labels, &params);
        for r in data.iter().take(20) {
            assert_eq!(a.predict_row(r), b.predict_row(r));
        }
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i * 2)]).collect();
        let labels: Vec<f64> = data
            .iter()
            .map(|r| if r[0] > 100.0 { 1.0 } else { -1.0 })
            .collect();
        let model = Gbdt::train(&data, &labels, &GbdtParams::default());
        // Odd values never seen in training.
        assert!(model.predict_row(&[31.0]) < 0.0);
        assert!(model.predict_row(&[151.0]) > 0.0);
    }
}
