//! Quantile binning: map each feature to at most 256 integer bins, chosen at
//! (approximate) quantiles of the training distribution. Histogram-based
//! split finding then costs O(rows + bins) per feature per node instead of
//! O(rows log rows).

/// Per-feature quantile bin edges.
///
/// A value `x` of feature `f` falls in the first bin whose upper edge is
/// `>= x`; values above the last edge share the top bin. A split "at bin b"
/// means the predicate `x <= edges[f][b]`.
#[derive(Debug, Clone)]
pub struct Binner {
    /// `edges[f]` = sorted, deduplicated upper edges (≤ max_bins entries).
    edges: Vec<Vec<f64>>,
}

impl Binner {
    /// Fit edges from row-major training data.
    pub fn fit(data: &[Vec<f64>], max_bins: usize) -> Self {
        assert!((2..=256).contains(&max_bins), "bins must be in 2..=256");
        let num_features = data.first().map_or(0, Vec::len);
        let mut edges = Vec::with_capacity(num_features);
        let mut scratch: Vec<f64> = Vec::with_capacity(data.len());
        for f in 0..num_features {
            scratch.clear();
            scratch.extend(data.iter().map(|r| r[f]).filter(|v| !v.is_nan()));
            scratch.sort_by(f64::total_cmp);
            scratch.dedup();
            let mut fe = Vec::with_capacity(max_bins.min(scratch.len()));
            if scratch.len() <= max_bins {
                fe.extend_from_slice(&scratch);
            } else {
                // Evenly spaced quantiles over distinct values.
                for b in 1..=max_bins {
                    let idx = b * scratch.len() / max_bins - 1;
                    fe.push(scratch[idx]);
                }
                fe.dedup();
            }
            if fe.is_empty() {
                fe.push(0.0);
            }
            edges.push(fe);
        }
        Self { edges }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins used by feature `f`.
    pub fn bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// Bin index of value `x` for feature `f`.
    #[inline]
    pub fn bin_value(&self, f: usize, x: f64) -> u8 {
        let fe = &self.edges[f];
        // partition_point: first edge >= x.
        let idx = fe.partition_point(|&e| e < x);
        idx.min(fe.len() - 1) as u8
    }

    /// The split threshold of `(feature, bin)`: rows go left iff
    /// `x <= threshold`.
    pub fn threshold(&self, f: usize, bin: u8) -> f64 {
        self.edges[f][usize::from(bin)]
    }

    /// Bin a whole dataset into column-major `u8` layout (`[feature][row]`),
    /// the access pattern histogram accumulation wants.
    pub fn bin_dataset(&self, data: &[Vec<f64>]) -> Vec<Vec<u8>> {
        let n = data.len();
        let mut cols = vec![vec![0u8; n]; self.num_features()];
        for (r, row) in data.iter().enumerate() {
            for (f, col) in cols.iter_mut().enumerate() {
                col[r] = self.bin_value(f, row[f]);
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rows(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn small_domains_bin_exactly() {
        let data = rows(&[3.0, 1.0, 2.0, 1.0, 3.0]);
        let b = Binner::fit(&data, 16);
        assert_eq!(b.bins(0), 3);
        assert_eq!(b.bin_value(0, 1.0), 0);
        assert_eq!(b.bin_value(0, 2.0), 1);
        assert_eq!(b.bin_value(0, 3.0), 2);
        // Out-of-range values clamp to the extremes.
        assert_eq!(b.bin_value(0, -10.0), 0);
        assert_eq!(b.bin_value(0, 10.0), 2);
    }

    #[test]
    fn binning_respects_order() {
        let data: Vec<Vec<f64>> = (0..1000).map(|i| vec![f64::from(i)]).collect();
        let b = Binner::fit(&data, 32);
        assert!(b.bins(0) <= 32);
        let mut last = 0u8;
        for i in 0..1000 {
            let bin = b.bin_value(0, f64::from(i));
            assert!(bin >= last);
            last = bin;
        }
        assert_eq!(last as usize, b.bins(0) - 1);
    }

    #[test]
    fn thresholds_separate_bins() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let b = Binner::fit(&data, 10);
        for bin in 0..b.bins(0) as u8 {
            let thr = b.threshold(0, bin);
            // Everything at or below thr bins at or below `bin`.
            assert!(b.bin_value(0, thr) <= bin);
        }
    }

    #[test]
    fn column_major_layout() {
        let data = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let b = Binner::fit(&data, 8);
        let cols = b.bin_dataset(&data);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 3);
        assert_eq!(cols[0], vec![0, 1, 2]);
    }

    #[test]
    fn constant_feature() {
        let data = rows(&[5.0; 20]);
        let b = Binner::fit(&data, 8);
        assert_eq!(b.bins(0), 1);
        assert_eq!(b.bin_value(0, 5.0), 0);
    }

    proptest! {
        #[test]
        fn bin_is_monotone_in_value(values in prop::collection::vec(-1e5f64..1e5, 2..300),
                                    a in -1e5f64..1e5, b_ in -1e5f64..1e5) {
            let b = Binner::fit(&rows(&values), 64);
            let (lo, hi) = if a <= b_ { (a, b_) } else { (b_, a) };
            prop_assert!(b.bin_value(0, lo) <= b.bin_value(0, hi));
        }
    }
}
