//! A single regression tree grown with XGBoost's exact gain criterion over
//! binned features.

use crate::binner::Binner;

/// Regularization and stopping parameters used while growing a tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
}

/// A flattened binary tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Raw-value threshold: rows with `x <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One recorded split, for feature-importance accounting.
#[derive(Debug, Clone, Copy)]
pub struct SplitRecord {
    /// The split feature.
    pub feature: usize,
    /// Its gain.
    pub gain: f64,
}

impl Tree {
    /// Grow a tree on binned columns.
    ///
    /// * `binned` — column-major `[feature][row]` bins from a [`Binner`].
    /// * `grad`/`hess` — per-row gradient/hessian of the loss.
    /// * `rows` — indices of the rows this tree trains on (subsampling).
    /// * `features` — candidate feature indices (column subsampling).
    ///
    /// Records every accepted split in `splits` (for importance).
    #[allow(clippy::too_many_arguments)]
    pub fn grow(
        binned: &[Vec<u8>],
        binner: &Binner,
        grad: &[f64],
        hess: &[f64],
        rows: &[u32],
        features: &[usize],
        params: &TreeParams,
        splits: &mut Vec<SplitRecord>,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut tree = Tree { nodes: Vec::new() };
        build_node(
            binned, binner, grad, hess, rows, features, params, 0, &mut nodes, splits,
        );
        tree.nodes = nodes;
        tree
    }

    /// Predict on a raw (un-binned) feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The flattened nodes, for persistence.
    pub fn nodes_spec(&self) -> Vec<NodeSpec> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { value } => NodeSpec::Leaf { value: *value },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => NodeSpec::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
            })
            .collect()
    }

    /// Rebuild a tree from persisted nodes, validating every structural
    /// invariant [`predict_row`](Self::predict_row) relies on.
    ///
    /// `grow` appends children strictly after their parent, so a well-formed
    /// tree has `left > parent` and `right > parent` for every split —
    /// which also guarantees traversal terminates. Split features must index
    /// into a `num_features`-wide row. Violations (a corrupt or adversarial
    /// artifact) return an error instead of risking a panic or an infinite
    /// prediction loop.
    pub fn from_nodes(nodes: Vec<NodeSpec>, num_features: usize) -> Result<Self, &'static str> {
        if nodes.is_empty() {
            return Err("tree has no nodes");
        }
        for (i, n) in nodes.iter().enumerate() {
            if let NodeSpec::Split {
                feature,
                left,
                right,
                ..
            } = n
            {
                if *feature >= num_features {
                    return Err("split feature out of range");
                }
                if *left <= i || *left >= nodes.len() || *right <= i || *right >= nodes.len() {
                    return Err("split child index out of range");
                }
            }
        }
        Ok(Self {
            nodes: nodes
                .into_iter()
                .map(|n| match n {
                    NodeSpec::Leaf { value } => Node::Leaf { value },
                    NodeSpec::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    },
                })
                .collect(),
        })
    }
}

/// A tree node in persistable form — the exact state of the private node
/// array, exposed for `ps3_core`'s artifact codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeSpec {
    /// A leaf carrying its prediction value.
    Leaf {
        /// The leaf weight.
        value: f64,
    },
    /// An internal split.
    Split {
        /// Feature index the split tests.
        feature: usize,
        /// Rows with `x <= threshold` go left.
        threshold: f64,
        /// Index of the left child (always greater than this node's index).
        left: usize,
        /// Index of the right child (always greater than this node's index).
        right: usize,
    },
}

/// Recursively build the node for `rows`, returning its index.
#[allow(clippy::too_many_arguments)]
fn build_node(
    binned: &[Vec<u8>],
    binner: &Binner,
    grad: &[f64],
    hess: &[f64],
    rows: &[u32],
    features: &[usize],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<Node>,
    splits: &mut Vec<SplitRecord>,
) -> usize {
    let g: f64 = rows.iter().map(|&r| grad[r as usize]).sum();
    let h: f64 = rows.iter().map(|&r| hess[r as usize]).sum();

    let leaf = |nodes: &mut Vec<Node>| {
        let idx = nodes.len();
        nodes.push(Node::Leaf {
            value: -g / (h + params.lambda),
        });
        idx
    };

    if depth >= params.max_depth || rows.len() < 2 || h < 2.0 * params.min_child_weight {
        return leaf(nodes);
    }

    // Histogram split search.
    let parent_score = g * g / (h + params.lambda);
    let mut best: Option<(f64, usize, u8)> = None; // (gain, feature, bin)
    let mut hist_g = [0.0f64; 256];
    let mut hist_h = [0.0f64; 256];
    for &f in features {
        let nbins = binner.bins(f);
        if nbins < 2 {
            continue;
        }
        hist_g[..nbins].fill(0.0);
        hist_h[..nbins].fill(0.0);
        let col = &binned[f];
        for &r in rows {
            let b = usize::from(col[r as usize]);
            hist_g[b] += grad[r as usize];
            hist_h[b] += hess[r as usize];
        }
        let mut gl = 0.0;
        let mut hl = 0.0;
        // Split after bin b: left = bins 0..=b.
        for b in 0..nbins - 1 {
            gl += hist_g[b];
            hl += hist_h[b];
            let gr = g - gl;
            let hr = h - hl;
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score)
                - params.gamma;
            if gain > best.map_or(0.0, |(g, _, _)| g) {
                best = Some((gain, f, b as u8));
            }
        }
    }

    let Some((gain, feature, bin)) = best else {
        return leaf(nodes);
    };

    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
        .iter()
        .partition(|&&r| binned[feature][r as usize] <= bin);
    if left_rows.is_empty() || right_rows.is_empty() {
        return leaf(nodes);
    }
    splits.push(SplitRecord { feature, gain });

    let idx = nodes.len();
    nodes.push(Node::Leaf { value: 0.0 }); // placeholder; patched below
    let left = build_node(
        binned,
        binner,
        grad,
        hess,
        &left_rows,
        features,
        params,
        depth + 1,
        nodes,
        splits,
    );
    let right = build_node(
        binned,
        binner,
        grad,
        hess,
        &right_rows,
        features,
        params,
        depth + 1,
        nodes,
        splits,
    );
    nodes[idx] = Node::Split {
        feature,
        threshold: binner.threshold(feature, bin),
        left,
        right,
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_params() -> TreeParams {
        TreeParams {
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }

    /// Squared loss at prediction 0: grad = −y, hess = 1.
    fn grad_hess(ys: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (ys.iter().map(|&y| -y).collect(), vec![1.0; ys.len()])
    }

    #[test]
    fn learns_a_step_function() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let binner = Binner::fit(&data, 64);
        let binned = binner.bin_dataset(&data);
        let (g, h) = grad_hess(&ys);
        let rows: Vec<u32> = (0..100).collect();
        let mut splits = Vec::new();
        let tree = Tree::grow(
            &binned,
            &binner,
            &g,
            &h,
            &rows,
            &[0],
            &default_params(),
            &mut splits,
        );
        assert!(!splits.is_empty());
        assert!(tree.predict_row(&[10.0]) < 1.0);
        assert!(tree.predict_row(&[90.0]) > 9.0);
    }

    #[test]
    fn constant_labels_yield_single_leaf() {
        let data: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let ys = vec![3.0; 50];
        let binner = Binner::fit(&data, 32);
        let binned = binner.bin_dataset(&data);
        let (g, h) = grad_hess(&ys);
        let rows: Vec<u32> = (0..50).collect();
        let mut splits = Vec::new();
        let tree = Tree::grow(
            &binned,
            &binner,
            &g,
            &h,
            &rows,
            &[0],
            &default_params(),
            &mut splits,
        );
        assert!(splits.is_empty());
        assert_eq!(tree.num_nodes(), 1);
        // Leaf value shrinks toward 0 by λ: 50·3/(50+1).
        let expect = 150.0 / 51.0;
        assert!((tree.predict_row(&[25.0]) - expect).abs() < 1e-9);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise-free signal; feature 1 is constant.
        let data: Vec<Vec<f64>> = (0..80).map(|i| vec![f64::from(i % 2), 7.0]).collect();
        let ys: Vec<f64> = (0..80).map(|i| f64::from(i % 2) * 4.0).collect();
        let binner = Binner::fit(&data, 8);
        let binned = binner.bin_dataset(&data);
        let (g, h) = grad_hess(&ys);
        let rows: Vec<u32> = (0..80).collect();
        let mut splits = Vec::new();
        let tree = Tree::grow(
            &binned,
            &binner,
            &g,
            &h,
            &rows,
            &[0, 1],
            &default_params(),
            &mut splits,
        );
        assert!(splits.iter().all(|s| s.feature == 0));
        assert!(tree.predict_row(&[1.0, 7.0]) > tree.predict_row(&[0.0, 7.0]));
    }

    #[test]
    fn depth_limit_respected() {
        let data: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..64).map(f64::from).collect();
        let binner = Binner::fit(&data, 64);
        let binned = binner.bin_dataset(&data);
        let (g, h) = grad_hess(&ys);
        let rows: Vec<u32> = (0..64).collect();
        let mut splits = Vec::new();
        let params = TreeParams {
            max_depth: 1,
            ..default_params()
        };
        let tree = Tree::grow(&binned, &binner, &g, &h, &rows, &[0], &params, &mut splits);
        // Depth 1 = one split, two leaves.
        assert_eq!(tree.num_nodes(), 3);
        assert_eq!(splits.len(), 1);
    }

    #[test]
    fn gamma_suppresses_weak_splits() {
        let data: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        // Barely-informative labels.
        let ys: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 0.01 }).collect();
        let binner = Binner::fit(&data, 32);
        let binned = binner.bin_dataset(&data);
        let (g, h) = grad_hess(&ys);
        let rows: Vec<u32> = (0..40).collect();
        let mut splits = Vec::new();
        let params = TreeParams {
            gamma: 10.0,
            ..default_params()
        };
        let tree = Tree::grow(&binned, &binner, &g, &h, &rows, &[0], &params, &mut splits);
        assert_eq!(tree.num_nodes(), 1, "gamma should veto the split");
    }
}
