//! Gradient-boosted regression trees, built from scratch for PS3's learned
//! importance sampling (§4.3).
//!
//! The paper uses XGBoost regressors with squared-error loss; this crate
//! reimplements the relevant subset:
//!
//! * [`binner`] — quantile binning of features (histogram-based training,
//!   like XGBoost's `hist` mode).
//! * [`tree`] — single regression trees grown greedily by the XGBoost gain
//!   criterion `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`.
//! * [`gbdt`] — the boosting loop with shrinkage, subsampling and per-feature
//!   "gain" importance (the Figure-5 metric).
//! * [`labels`] — Algorithm-4 training-label generation and the
//!   exponentially-spaced model thresholds of §4.3.

pub mod binner;
pub mod gbdt;
pub mod labels;
pub mod tree;

pub use binner::Binner;
pub use gbdt::{Gbdt, GbdtParams};
pub use labels::{choose_thresholds, make_labels};
pub use tree::{NodeSpec, Tree};
