#!/usr/bin/env bash
# Perf-trajectory gate for the micro benches.
#
# Usage: bench_gate.sh <raw_tsv> <out_json> [baseline_json]
#
#   raw_tsv       lines of "bench_name<TAB>ns_per_iter" appended by the
#                 vendored criterion when PS3_BENCH_TSV is set
#   out_json      where to write the flat {"name": ns, ...} trajectory
#                 (the repo-root BENCH_micro.json)
#   baseline_json optional committed baseline; when given, exit non-zero if
#                 any bench present in both files got more than MAX_RATIO
#                 (default 2.0) times slower. Benches whose baseline is
#                 under MIN_NS (default 10000 = 10µs) are reported but not
#                 gated: the vendored criterion does no statistical
#                 analysis, so sub-10µs numbers are noise-dominated.
#
# Environment knobs (the complete list — README's CI section points here):
#
#   PS3_BENCH_TSV    (read by the *benches*, not this script) absolute path
#                    the vendored criterion appends "name<TAB>ns" lines to;
#                    the CI step points it at ci-timings/bench-raw.tsv and
#                    then hands that file to this script as <raw_tsv>.
#   PS3_BENCH_ITERS  (read by the benches) timed iterations per bench
#                    (default 10); CI uses 5 to keep wall-clock down — the
#                    2x MAX_RATIO margin absorbs the extra noise.
#   MAX_RATIO        regression threshold vs. the baseline (default 2.0).
#   MIN_NS           baselines below this are report-only (default 10000).
#   SCALE_TOLERANCE  multi-core scaling check slack: serve/multi_thread may
#                    be up to this factor slower than serve/single_thread
#                    on a 4+-core runner before failing (default 1.0).
#   WARM_MIN_SPEEDUP minimum train/train_cold ÷ train/retrain_warm ratio
#                    before failing (default 10): the incremental retrain
#                    must stay an order of magnitude under a cold rebuild.
#   BOOT_MIN_SPEEDUP minimum train/train_cold ÷ persist/boot_from_artifact
#                    ratio before failing (default 10): booting a frozen
#                    artifact must stay an order of magnitude under
#                    retraining, or the persistence layer has lost its
#                    reason to exist.
#   PIPELINE_MIN_SPEEDUP minimum net/roundtrip_cold ÷
#                    net/roundtrip_pipelined_x16 ratio before failing
#                    (default 4): the pipelined row records *per-request*
#                    cost of a 16-deep batch, which must amortize the
#                    wire + wakeup overhead well under one cold roundtrip.
#   CORES_OVERRIDE   pretend the runner has this many cores (makes the
#                    scaling branch testable on any box; normally unset).
set -euo pipefail

raw="$1"
out="$2"
baseline="${3:-}"
max_ratio="${MAX_RATIO:-2.0}"
min_ns="${MIN_NS:-10000}"

# Benches the gate insists on seeing in the raw output: losing one (a
# renamed group, a deleted bench target) silently un-gates a hot path, so
# absence is a failure, not a skip. Sub-MIN_NS members are still
# report-only for the *ratio* check — presence is what's enforced here.
required_benches="
kernel/compile_query
kernel/cmp_mask_partition
kernel/in_mask_partition
kernel/fused_partition_scan
kernel/fused_partition_scan_simd
query_time/execute_one_partition
query_time/query_features
query_time/kmeans_64x8
query_time/hac_ward_64x8
cluster/kmeans_minibatch_64x8
cluster/assign_step_simd
train/train_cold
train/retrain_warm
picker/full_pick_25pct
serve/single_thread
serve/multi_thread
serve_sweep/six_budget_sweep_cached
router/answer_cold
router/answer_cached
router_fanin/fanin_8_tenants
net/roundtrip_cold
net/roundtrip_cached
net/roundtrip_pipelined_x16
planner/plan_cold
planner/plan_warm
planner/stream_roundtrip
persist/freeze
persist/thaw_cold
persist/boot_from_artifact
sketch/quantile_update_fused
sketch/distinct_update
sketch/merge_64
"

if [ ! -s "$raw" ]; then
    echo "bench_gate: no raw measurements at $raw" >&2
    exit 1
fi

missing=0
for b in $required_benches; do
    if ! cut -f1 "$raw" | grep -qx "$b"; then
        echo "bench_gate: required bench '$b' missing from $raw" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

# The runner's core count and git revision ride along as `_meta/` entries:
# trajectory numbers are meaningless without knowing the hardware they came
# from (the committed baseline was measured in a 1-CPU build container,
# where serve/multi_thread can legitimately trail serve/single_thread) or
# which source they measured. The ratio loop below skips `_meta/` keys.
# CORES_OVERRIDE exists so the scaling branch below is testable on any box.
cores="${CORES_OVERRIDE:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"
git_rev="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"

# TSV -> flat JSON object, one "name": ns pair per line (the fixed layout
# lets the comparison below parse it back with sed alone — no jq needed).
{
    echo '{'
    awk -F'\t' '{printf "  \"%s\": %s,\n", $1, $2}' "$raw"
    printf '  "_meta/cores": %s,\n' "$cores"
    printf '  "_meta/git_rev": "%s"\n}\n' "$git_rev"
} >"$out"
echo "bench_gate: wrote $(wc -l <"$raw") benches to $out (cores: $cores, rev: $git_rev)"

# Multi-core scaling check: on a 4+ core runner the pooled serving path
# must not be slower than the serial baseline (both rows measure the same
# 48-request batch). On fewer cores the comparison is meaningless — pool
# overhead with no parallelism to pay for it — so it is skipped, not
# asserted. SCALE_TOLERANCE > 1.0 loosens the bar for noisy runners.
scale_tolerance="${SCALE_TOLERANCE:-1.0}"
single_ns=$(awk -F'\t' '$1 == "serve/single_thread" {print $2; exit}' "$raw")
multi_ns=$(awk -F'\t' '$1 == "serve/multi_thread" {print $2; exit}' "$raw")
if [ "$cores" -ge 4 ] && [ -n "$single_ns" ] && [ -n "$multi_ns" ]; then
    awk -v s="$single_ns" -v m="$multi_ns" -v tol="$scale_tolerance" -v c="$cores" 'BEGIN {
        ratio = s > 0 ? m / s : 0;
        printf "bench_gate: scaling check on %d cores: multi %d ns vs single %d ns (%.2fx)\n", c, m, s, ratio;
        if (m > s * tol) {
            print "bench_gate: FAIL — serve/multi_thread is slower than serve/single_thread on a multi-core runner";
            exit 1;
        }
    }' || exit 1
else
    echo "bench_gate: scaling check skipped (cores: $cores < 4)"
fi

# Warm-retrain check: the incremental path exists to be an order of
# magnitude under a cold rebuild on an unchanged table; if it drifts back
# toward cold-training cost the reuse is broken, whatever the absolute
# numbers are. WARM_MIN_SPEEDUP loosens/tightens the bar (default 10).
warm_min_speedup="${WARM_MIN_SPEEDUP:-10}"
cold_ns=$(awk -F'\t' '$1 == "train/train_cold" {print $2; exit}' "$raw")
warm_ns=$(awk -F'\t' '$1 == "train/retrain_warm" {print $2; exit}' "$raw")
awk -v c="$cold_ns" -v w="$warm_ns" -v min="$warm_min_speedup" 'BEGIN {
    speedup = w > 0 ? c / w : 0;
    printf "bench_gate: warm retrain %d ns vs cold train %d ns (%.1fx)\n", w, c, speedup;
    if (speedup < min) {
        printf "bench_gate: FAIL — train/retrain_warm is under %.0fx faster than train/train_cold\n", min;
        exit 1;
    }
}' || exit 1

# Cold-boot check: thawing an artifact and answering the first query must
# stay an order of magnitude under training from scratch — that ratio is
# the persistence layer's contract. BOOT_MIN_SPEEDUP adjusts the bar
# (default 10).
boot_min_speedup="${BOOT_MIN_SPEEDUP:-10}"
boot_ns=$(awk -F'\t' '$1 == "persist/boot_from_artifact" {print $2; exit}' "$raw")
awk -v c="$cold_ns" -v b="$boot_ns" -v min="$boot_min_speedup" 'BEGIN {
    speedup = b > 0 ? c / b : 0;
    printf "bench_gate: artifact boot %d ns vs cold train %d ns (%.1fx)\n", b, c, speedup;
    if (speedup < min) {
        printf "bench_gate: FAIL — persist/boot_from_artifact is under %.0fx faster than train/train_cold\n", min;
        exit 1;
    }
}' || exit 1

# Pipelining check: the pipelined row is per-request cost of a 16-deep
# batch on a warm key; batching must amortize the syscall + event-loop
# wakeup overhead well below one full cold roundtrip, or the vectored
# batched-I/O path has stopped paying for itself. PIPELINE_MIN_SPEEDUP
# adjusts the bar (default 4).
pipeline_min_speedup="${PIPELINE_MIN_SPEEDUP:-4}"
net_cold_ns=$(awk -F'\t' '$1 == "net/roundtrip_cold" {print $2; exit}' "$raw")
piped_ns=$(awk -F'\t' '$1 == "net/roundtrip_pipelined_x16" {print $2; exit}' "$raw")
awk -v c="$net_cold_ns" -v p="$piped_ns" -v min="$pipeline_min_speedup" 'BEGIN {
    speedup = p > 0 ? c / p : 0;
    printf "bench_gate: pipelined request %d ns vs cold roundtrip %d ns (%.1fx)\n", p, c, speedup;
    if (speedup < min) {
        printf "bench_gate: FAIL — net/roundtrip_pipelined_x16 is under %.0fx cheaper than net/roundtrip_cold per request\n", min;
        exit 1;
    }
}' || exit 1

if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_gate: no baseline to compare against; done"
    exit 0
fi

base_tsv=$(mktemp)
trap 'rm -f "$base_tsv"' EXIT
sed -n 's/^  "\(.*\)": \([0-9][0-9]*\),\{0,1\}$/\1\t\2/p' "$baseline" >"$base_tsv"

awk -F'\t' -v max_ratio="$max_ratio" -v min_ns="$min_ns" '
    $1 ~ /^_meta\// { next }
    NR == FNR { base[$1] = $2; next }
    ($1 in base) {
        ratio = base[$1] > 0 ? $2 / base[$1] : 1;
        gated = base[$1] >= min_ns;
        flag = "";
        if (ratio > max_ratio) flag = gated ? "  << REGRESSION" : "  (ungated: baseline < min_ns)";
        printf "%-50s %14d ns  (baseline %14d ns, %.2fx)%s\n", $1, $2, base[$1], ratio, flag;
        if (gated && ratio > max_ratio) bad = 1;
    }
    END {
        if (bad) {
            printf "bench_gate: FAIL — at least one bench regressed more than %.1fx\n", max_ratio;
            exit 1;
        }
        print "bench_gate: OK";
    }
' "$base_tsv" "$raw"
