#!/usr/bin/env bash
# Perf-trajectory gate for the micro benches.
#
# Usage: bench_gate.sh <raw_tsv> <out_json> [baseline_json]
#
#   raw_tsv       lines of "bench_name<TAB>ns_per_iter" appended by the
#                 vendored criterion when PS3_BENCH_TSV is set
#   out_json      where to write the flat {"name": ns, ...} trajectory
#                 (the repo-root BENCH_micro.json)
#   baseline_json optional committed baseline; when given, exit non-zero if
#                 any bench present in both files got more than MAX_RATIO
#                 (default 2.0) times slower. Benches whose baseline is
#                 under MIN_NS (default 10000 = 10µs) are reported but not
#                 gated: the vendored criterion does no statistical
#                 analysis, so sub-10µs numbers are noise-dominated.
set -euo pipefail

raw="$1"
out="$2"
baseline="${3:-}"
max_ratio="${MAX_RATIO:-2.0}"
min_ns="${MIN_NS:-10000}"

# Benches the gate insists on seeing in the raw output: losing one (a
# renamed group, a deleted bench target) silently un-gates a hot path, so
# absence is a failure, not a skip. Sub-MIN_NS members are still
# report-only for the *ratio* check — presence is what's enforced here.
required_benches="
kernel/compile_query
kernel/cmp_mask_partition
kernel/in_mask_partition
kernel/fused_partition_scan
query_time/execute_one_partition
query_time/query_features
query_time/kmeans_64x8
query_time/hac_ward_64x8
picker/full_pick_25pct
serve/single_thread
serve/multi_thread
serve_sweep/six_budget_sweep_cached
"

if [ ! -s "$raw" ]; then
    echo "bench_gate: no raw measurements at $raw" >&2
    exit 1
fi

missing=0
for b in $required_benches; do
    if ! cut -f1 "$raw" | grep -qx "$b"; then
        echo "bench_gate: required bench '$b' missing from $raw" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

# TSV -> flat JSON object, one "name": ns pair per line (the fixed layout
# lets the comparison below parse it back with sed alone — no jq needed).
{
    echo '{'
    awk -F'\t' 'NR>1{printf ",\n"} {printf "  \"%s\": %s", $1, $2}' "$raw"
    printf '\n}\n'
} >"$out"
echo "bench_gate: wrote $(wc -l <"$raw") benches to $out"

if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_gate: no baseline to compare against; done"
    exit 0
fi

base_tsv=$(mktemp)
trap 'rm -f "$base_tsv"' EXIT
sed -n 's/^  "\(.*\)": \([0-9][0-9]*\),\{0,1\}$/\1\t\2/p' "$baseline" >"$base_tsv"

awk -F'\t' -v max_ratio="$max_ratio" -v min_ns="$min_ns" '
    NR == FNR { base[$1] = $2; next }
    ($1 in base) {
        ratio = base[$1] > 0 ? $2 / base[$1] : 1;
        gated = base[$1] >= min_ns;
        flag = "";
        if (ratio > max_ratio) flag = gated ? "  << REGRESSION" : "  (ungated: baseline < min_ns)";
        printf "%-50s %14d ns  (baseline %14d ns, %.2fx)%s\n", $1, $2, base[$1], ratio, flag;
        if (gated && ratio > max_ratio) bad = 1;
    }
    END {
        if (bad) {
            printf "bench_gate: FAIL — at least one bench regressed more than %.1fx\n", max_ratio;
            exit 1;
        }
        print "bench_gate: OK";
    }
' "$base_tsv" "$raw"
