//! The flat import surface (`use proptest::prelude::*`).

pub use crate::{
    any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
    ProptestConfig, Strategy, TestCaseError,
};
