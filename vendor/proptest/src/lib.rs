//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments with no crates.io access, so
//! the subset of the proptest 1.x API that PS3's property tests use is
//! reimplemented here: the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, [`Just`] and [`any`].
//!
//! Semantics: each test body runs for `ProptestConfig::cases` randomly
//! sampled inputs from a per-test deterministic RNG. There is **no
//! shrinking** — a failing case panics with the sampled inputs' debug
//! representation instead of a minimised one. That is a weaker debugging
//! experience than real proptest but identical pass/fail power.

use std::fmt;

pub mod collection;
pub mod prelude;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert!`; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator used by the runner (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Per-test seed: hash of the test's name, so sibling tests draw
    /// decorrelated streams while staying reproducible run to run.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Object-safe sampling, so `prop_oneof!` can mix heterogeneous strategies.
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!` desugars to this).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy (`any::<bool>()` etc.).
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    /// Finite, roughly unit-scale values (not the full bit-pattern space).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(width.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// `prop::collection::vec`, `prop::num`, … namespace mirror.
pub mod prop {
    pub use crate::collection;
}

/// Runs one generated case; used by the [`proptest!`] expansion.
#[doc(hidden)]
pub fn run_case(result: Result<(), TestCaseError>, case: u32, inputs: &str) {
    if let Err(e) = result {
        panic!("proptest case {case} failed with inputs {inputs}: {e}");
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} case {}/{} failed: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}
