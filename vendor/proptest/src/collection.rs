//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::fmt;

/// Anything usable as a size specifier for [`vec`]: a fixed size or a range.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with length drawn from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
