//! Slice helpers: in-place Fisher–Yates shuffle and uniform element choice.

use crate::{RngCore, SampleRange};

pub trait SliceRandom {
    type Item;

    /// Uniform in-place shuffle (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}
