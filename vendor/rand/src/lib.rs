//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in offline environments with no crates.io access, so
//! the subset of the rand 0.8 API that PS3 uses is reimplemented here:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Streams are deterministic for a given seed, which is
//! all the PS3 evaluation needs; swap this for the real crate by pointing the
//! workspace dependency back at crates.io.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// The flat import surface (`use rand::prelude::*`).
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core source of randomness: 64 bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that `Rng::gen` can produce from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply with rejection
/// (Lemire's method), so small bounds are exactly uniform.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, width as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against round-up to the exclusive bound.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn small_bounds_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
