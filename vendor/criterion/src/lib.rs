//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments with no crates.io access, so
//! the subset of the criterion 0.5 API that the `micro_*` benches use is
//! reimplemented here: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up, then a fixed batch
//! of timed iterations, reporting mean wall-clock time per iteration (and
//! throughput when declared). There is no statistical analysis, HTML report
//! or `target/criterion` history; swap in the real crate for those.
//!
//! Two extensions beyond the real API: when the `PS3_BENCH_TSV` environment
//! variable names a file, every benchmark appends a `name\tns_per_iter`
//! line to it (CI turns those lines into the `BENCH_micro.json` perf
//! trajectory and gates merges on regressions — see `scripts/bench_gate.sh`);
//! and `PS3_BENCH_ITERS=<n>` overrides every benchmark's timed iteration
//! count, letting CI trade precision for wall-clock without touching the
//! TSV hook the gate depends on.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimiser cannot delete benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs and times one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocations).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// The caller runs `iters` iterations itself and returns the duration to
    /// charge for them. This is how a bench reports *amortised* cost: run a
    /// pipelined batch of N requests inside one iteration and return
    /// `elapsed / N`, so the recorded ns/iter is per-request, not per-batch.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Warm-up with a single iteration; the measurement pass is the
        // caller's (its returned duration is taken at face value).
        black_box(f(1));
        self.elapsed = f(self.iters);
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // PS3_BENCH_ITERS globally overrides per-group sample sizes (the CI
    // bench step uses it to run faster); invalid values fall back.
    let iters = std::env::var("PS3_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(sample_size.max(1) as u64);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
    let name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  {:.1} Melem/s", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("bench: {name:<50} {:>12}/iter{rate}", fmt_time(per_iter));
    if let Ok(path) = std::env::var("PS3_BENCH_TSV") {
        if !path.is_empty() {
            use std::io::Write;
            // This file feeds the CI perf gate: failing to record a
            // measurement must be loud, not a silent green bench run.
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("PS3_BENCH_TSV: cannot open {path}: {e}"));
            writeln!(f, "{name}\t{}", per_iter.as_nanos())
                .unwrap_or_else(|e| panic!("PS3_BENCH_TSV: cannot write {path}: {e}"));
        }
    }
}

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), 10, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
